#include "sweep/sweep_runner.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "chaos/chaos_runner.hpp"
#include "config/serialize.hpp"
#include "core/experiment.hpp"
#include "net/topology.hpp"
#include "probe/self_profiler.hpp"
#include "scale/flow_class.hpp"
#include "sweep/trial_cache.hpp"
#include "workload/workload_spec.hpp"

namespace hcsim::sweep {

namespace {

bool parseSiteName(const std::string& s, Site& out) {
  if (s == "lassen") out = Site::Lassen;
  else if (s == "ruby") out = Site::Ruby;
  else if (s == "quartz") out = Site::Quartz;
  else if (s == "wombat") out = Site::Wombat;
  else return false;
  return true;
}

bool parseStorageName(const std::string& s, StorageKind& out) {
  if (s == "vast") out = StorageKind::Vast;
  else if (s == "gpfs") out = StorageKind::Gpfs;
  else if (s == "lustre") out = StorageKind::Lustre;
  else if (s == "nvme") out = StorageKind::NvmeLocal;
  else if (s == "daos") out = StorageKind::Daos;
  else return false;
  return true;
}

/// makeEnvironment with the trial's optional "storageConfig" overrides
/// merged onto the site's preset deployment, plus the optional
/// "transport" section routing transfers through hcsim::transport
/// (core/experiment owns the logic, shared with hcsim::chaos).
Environment makeTrialEnvironment(Site site, StorageKind kind, std::size_t nodes,
                                 const JsonValue* overrides, const JsonValue* transportSection) {
  return makeEnvironment(site, kind, nodes, overrides, transportSection);
}

/// Copy the fabric's endpoint counters into the metric columns. A trial
/// without a fabric leaves hasTransport unset, so its emitted bytes stay
/// identical to a build without hcsim::transport.
void fillTransport(TrialMetrics& m, const Environment& env) {
  if (env.transport == nullptr) return;
  m.hasTransport = true;
  m.transportOps = static_cast<double>(env.transport->opsPosted());
  m.transportBytes = static_cast<double>(env.transport->bytesPosted());
  m.transportThrottleSec = env.transport->throttleDelay();
  m.transportConnSetups = static_cast<double>(env.transport->connectionSetups());
  m.transportSqWaits = static_cast<double>(env.transport->sqWaits());
  m.transportDoorbells = static_cast<double>(env.transport->doorbells());
}

/// Copy engine/network/attribution telemetry out of a finished trial
/// environment into the metric columns.
void fillTelemetry(TrialMetrics& m, const Environment& env) {
  m.hasTelemetry = true;
  const Simulator& sim = env.bench->sim();
  m.eventsScheduled = static_cast<double>(sim.eventsScheduled());
  m.eventsCancelled = static_cast<double>(sim.eventsCancelled());
  m.eventsAdjusted = static_cast<double>(sim.eventsAdjusted());
  m.eventsDispatched = static_cast<double>(sim.eventsDispatched());
  m.rerates = static_cast<double>(env.bench->topo().network().rerates());
  const telemetry::AttributionReport rep = env.bench->telemetry().attribution();
  m.dominantStage = rep.dominantStage;
  m.dominantSharePct = rep.dominantSharePct;
}

/// Copy the bench's wall-clock self-profile into the metric columns.
void fillSelf(TrialMetrics& m, const Environment& env) {
  const probe::SelfProfiler& p = env.bench->profiler();
  m.hasSelf = true;
  m.selfDispatchSec = p.seconds(probe::SelfProfiler::Bucket::Dispatch);
  m.selfCallbackSec = p.seconds(probe::SelfProfiler::Bucket::Callback);
  m.selfSolveSec = p.seconds(probe::SelfProfiler::Bucket::Solve);
  m.selfTelemetrySec = p.seconds(probe::SelfProfiler::Bucket::Telemetry);
  m.selfSinkSec = p.seconds(probe::SelfProfiler::Bucket::Sink);
}

/// Fold an optional "chaos" section (events + the usual schedule keys)
/// into an IOR/DLIO trial: the faults are scheduled onto the trial's
/// simulator before the runner starts, so they strike mid-workload. An
/// absent or event-free section leaves the trial byte-identical to a
/// build without this feature.
void injectChaos(const JsonValue& config, Environment& env) {
  const JsonValue* section = config.find("chaos");
  if (section == nullptr || section->isNull()) return;
  chaos::ChaosSpec cs;
  std::string err;
  if (!chaos::parseChaosSpec(*section, cs, err)) {
    throw std::invalid_argument("sweep: 'chaos' section: " + err);
  }
  if (cs.events.empty()) return;
  // The runner owns the clock, so there is no horizon to check against.
  cs.horizon = std::numeric_limits<double>::infinity();
  cs.interval = 1.0;
  const std::vector<std::string> problems = chaos::validateSchedule(cs, *env.fs, env.bench->topo());
  if (!problems.empty()) {
    std::string msg = "sweep: 'chaos' section:";
    for (const std::string& p : problems) msg += " " + p + ";";
    throw std::invalid_argument(msg);
  }
  chaos::scheduleFaults(env, cs.events);
}

TrialMetrics runIorTrial(const JsonValue& config, Site site, StorageKind kind,
                         const TrialOptions& opts) {
  IorConfig cfg;
  if (const JsonValue* j = config.find("ior")) {
    if (!fromJson(*j, cfg)) throw std::invalid_argument("sweep: 'ior' section does not parse");
  }
  cfg.validate();
  Environment env = makeTrialEnvironment(site, kind, cfg.nodes, config.find("storageConfig"),
                                         config.find("transport"));
  if (opts.telemetry) env.bench->telemetry().setEnabled(true);
  if (opts.selfProfile) env.bench->profiler().setEnabled(true);
  injectChaos(config, env);
  IorRunner runner(*env.bench, *env.fs);
  const IorResult r = runner.run(cfg);
  // The opLatency contract: per-op latencies exist exactly when
  // individual operations were simulated (PerOp mode). Coalesced runs
  // have no per-op notion, so their summary must stay empty — the sink
  // serializes that as null, never as a zero-filled distribution.
  assert((cfg.mode == IorConfig::Mode::PerOp) == (r.opLatency.count > 0));
  TrialMetrics m;
  m.ok = true;
  m.meanGBs = units::toGBs(r.bandwidth.mean);
  m.minGBs = units::toGBs(r.bandwidth.min);
  m.maxGBs = units::toGBs(r.bandwidth.max);
  m.elapsedSec = r.meanElapsed;
  m.bytesMoved = static_cast<double>(r.totalBytes);
  m.latencyCapable = true;
  if (r.opLatency.count > 0) {
    m.hasOpLatency = true;
    m.opCount = static_cast<double>(r.opLatency.count);
    m.opP50 = r.opLatency.p50;
    m.opP95 = r.opLatency.p95;
    m.opP99 = r.opLatency.p99;
  }
  if (opts.telemetry) fillTelemetry(m, env);
  if (opts.selfProfile) fillSelf(m, env);
  fillTransport(m, env);
  return m;
}

/// A "workload" trial: the trial config *is* a WorkloadRunSpec document
/// (site/storage/workload/chaos/retry at the top level), so the
/// generator and every generator knob are sweepable axes. The cache key
/// covers the whole config — including the workload section — so two
/// trials differing only in generator keys never collide.
TrialMetrics runWorkloadTrial(const JsonValue& config, const TrialOptions& opts) {
  workload::WorkloadRunSpec spec;
  std::vector<std::string> problems;
  workload::parseWorkloadSpec(config, spec, problems);
  workload::SourceBundle bundle;
  if (problems.empty()) bundle = workload::makeSource(spec, problems);
  if (!problems.empty()) {
    std::string msg = "sweep: workload trial:";
    for (const std::string& p : problems) msg += " " + p + ";";
    throw std::invalid_argument(msg);
  }
  Environment env = makeTrialEnvironment(spec.site, spec.storage, bundle.nodes,
                                         spec.storageConfig.isNull() ? nullptr
                                                                     : &spec.storageConfig,
                                         spec.transport.isNull() ? nullptr : &spec.transport);
  if (opts.telemetry) env.bench->telemetry().setEnabled(true);
  if (opts.selfProfile) env.bench->profiler().setEnabled(true);
  const workload::ChaosLandmarks lm = workload::injectWorkloadChaos(spec, env);
  const workload::WorkloadOutcome r =
      workload::runWorkload(env, spec, *bundle.source, nullptr, &lm);
  TrialMetrics m;
  m.ok = true;
  m.meanGBs = m.minGBs = m.maxGBs = r.goodputGBs();
  m.elapsedSec = r.elapsed;
  m.bytesMoved = static_cast<double>(r.bytesMoved);
  m.latencyCapable = true;
  if (!r.opLatencies.empty()) {
    // Flow classes (hcsim::scale): every latency entry stands for
    // clientsPerRank clients, so demultiplex the weighted multiset —
    // this keeps trial metrics invariant under class partitioning. At
    // clientsPerRank == 1 the result matches summarize() byte-for-byte.
    std::vector<scale::WeightedSample> weighted;
    weighted.reserve(r.opLatencies.size());
    for (double v : r.opLatencies) weighted.push_back({v, r.clientsPerRank});
    const Summary s = scale::demultiplex(std::move(weighted));
    m.hasOpLatency = true;
    m.opCount = static_cast<double>(s.count);
    m.opP50 = s.p50;
    m.opP95 = s.p95;
    m.opP99 = s.p99;
  }
  if (r.monitors > 0) {
    m.hasMonitors = true;
    m.monitors = static_cast<double>(r.monitors);
    m.breaches = static_cast<double>(r.breaches.size());
  }
  if (opts.telemetry) fillTelemetry(m, env);
  if (opts.selfProfile) fillSelf(m, env);
  fillTransport(m, env);
  return m;
}

TrialMetrics runDlioTrial(const JsonValue& config, Site site, StorageKind kind,
                          const TrialOptions& opts) {
  DlioConfig cfg;
  if (const JsonValue* j = config.find("dlio")) {
    if (!fromJson(*j, cfg)) throw std::invalid_argument("sweep: 'dlio' section does not parse");
  }
  Environment env = makeTrialEnvironment(site, kind, cfg.nodes, config.find("storageConfig"),
                                         config.find("transport"));
  if (opts.telemetry) env.bench->telemetry().setEnabled(true);
  if (opts.selfProfile) env.bench->profiler().setEnabled(true);
  injectChaos(config, env);
  DlioRunner runner(*env.bench, *env.fs);
  const DlioResult r = runner.run(cfg);
  TrialMetrics m;
  m.ok = true;
  m.meanGBs = m.minGBs = m.maxGBs = units::toGBs(r.throughput.application);
  m.elapsedSec = r.runtime;
  m.bytesMoved = static_cast<double>(r.bytesRead + r.bytesCheckpointed);
  if (opts.telemetry) fillTelemetry(m, env);
  if (opts.selfProfile) fillSelf(m, env);
  fillTransport(m, env);
  return m;
}

/// A whole-scenario trial: the trial config *is* a ChaosSpec (site/
/// storage/workload/events at the top level), so sweep axes can vary the
/// schedule itself — severity, event times, retry policy.
TrialMetrics runChaosTrial(const JsonValue& config, const TrialOptions& opts) {
  chaos::ChaosSpec spec;
  std::string err;
  if (!chaos::parseChaosSpec(config, spec, err)) {
    throw std::invalid_argument("sweep: chaos trial: " + err);
  }
  Environment env = makeEnvironment(spec.site, spec.storage, spec.workload.nodes,
                                    spec.storageConfig.isNull() ? nullptr : &spec.storageConfig,
                                    spec.transport.isNull() ? nullptr : &spec.transport);
  if (opts.telemetry) env.bench->telemetry().setEnabled(true);
  if (opts.selfProfile) env.bench->profiler().setEnabled(true);
  const chaos::ChaosOutcome r = chaos::runChaosOn(env, spec);
  TrialMetrics m;
  m.ok = true;
  m.meanGBs = r.meanGBs;
  m.minGBs = r.minGBs;
  m.maxGBs = r.maxGBs;
  m.elapsedSec = spec.horizon;
  m.bytesMoved = static_cast<double>(r.foregroundBytes);
  if (r.monitors > 0) {
    m.hasMonitors = true;
    m.monitors = static_cast<double>(r.monitors);
    m.breaches = static_cast<double>(r.breaches.size());
  }
  if (opts.telemetry) fillTelemetry(m, env);
  if (opts.selfProfile) fillSelf(m, env);
  fillTransport(m, env);
  return m;
}

}  // namespace

std::size_t defaultJobs() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<std::size_t>(hc);
}

TrialMetrics runTrial(const std::string& experiment, const JsonValue& config,
                      const TrialOptions& opts) {
  TrialMetrics m;
  try {
    Site site = Site::Lassen;
    if (!parseSiteName(config.stringOr("site", "lassen"), site)) {
      throw std::invalid_argument("sweep: 'site' must be lassen|ruby|quartz|wombat");
    }
    StorageKind kind = StorageKind::Vast;
    if (!parseStorageName(config.stringOr("storage", "vast"), kind)) {
      throw std::invalid_argument("sweep: 'storage' must be vast|gpfs|lustre|nvme|daos");
    }
    if (experiment == "ior") return runIorTrial(config, site, kind, opts);
    if (experiment == "dlio") return runDlioTrial(config, site, kind, opts);
    if (experiment == "chaos") return runChaosTrial(config, opts);
    if (experiment == "workload") return runWorkloadTrial(config, opts);
    throw std::invalid_argument(
        "sweep: experiment must be 'ior', 'dlio', 'chaos' or 'workload'");
  } catch (const std::exception& ex) {
    m.ok = false;
    m.error = ex.what();
  }
  return m;
}

void parallelFor(std::size_t n, std::size_t jobs, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t workers =
      std::max<std::size_t>(1, std::min(jobs == 0 ? defaultJobs() : jobs, n));

  struct WorkDeque {
    std::mutex mu;
    std::deque<std::size_t> q;
  };
  std::vector<WorkDeque> deques(workers);
  for (std::size_t i = 0; i < n; ++i) deques[i % workers].q.push_back(i);

  const auto popOwn = [&deques](std::size_t w, std::size_t& idx) {
    std::lock_guard<std::mutex> lk(deques[w].mu);
    if (deques[w].q.empty()) return false;
    idx = deques[w].q.front();
    deques[w].q.pop_front();
    return true;
  };
  const auto steal = [&deques, workers](std::size_t w, std::size_t& idx) {
    for (std::size_t off = 1; off < workers; ++off) {
      WorkDeque& d = deques[(w + off) % workers];
      std::lock_guard<std::mutex> lk(d.mu);
      if (d.q.empty()) continue;
      idx = d.q.back();
      d.q.pop_back();
      return true;
    }
    return false;
  };

  // Each index is claimed by exactly one worker, so the only
  // synchronization needed is the deque locks and the final join.
  const auto work = [&](std::size_t w) {
    std::size_t idx = 0;
    while (popOwn(w, idx) || steal(w, idx)) fn(idx);
  };

  if (workers == 1) {
    work(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(work, w);
    for (std::thread& t : pool) t.join();
  }
}

namespace {

/// runTrial through the cache: hit returns the memoized metrics (which a
/// deterministic re-run would reproduce bit-for-bit), miss simulates and
/// memoizes.
TrialMetrics runTrialCached(const std::string& experiment, const JsonValue& config,
                            TrialCache* cache, const TrialOptions& opts) {
  // Self-profiled trials measure host wall-clock, which no cache entry
  // can reproduce — they always simulate and never populate the cache.
  if (cache == nullptr || opts.selfProfile) return runTrial(experiment, config, opts);
  // Telemetry trials carry extra columns, so they memoize under a
  // distinct key — a plain entry must never satisfy a telemetry lookup.
  const std::string key =
      trialKey(opts.telemetry ? experiment + "+telemetry" : experiment, config);
  if (auto hit = cache->lookup(key)) return *hit;
  TrialMetrics m = runTrial(experiment, config, opts);
  cache->insert(key, m);
  return m;
}

}  // namespace

std::vector<TrialMetrics> runTrialBatch(const std::string& experiment,
                                        const std::vector<JsonValue>& configs, std::size_t jobs,
                                        TrialCache* cache, const TrialOptions& opts) {
  std::vector<TrialMetrics> out(configs.size());
  parallelFor(configs.size(), jobs, [&](std::size_t i) {
    out[i] = runTrialCached(experiment, configs[i], cache, opts);
  });
  return out;
}

SweepOutcome runSweep(const SweepSpec& spec, std::size_t jobs, TrialCache* cache,
                      const TrialOptions& opts) {
  std::vector<Trial> trials = expandTrials(spec);
  SweepOutcome out;
  out.name = spec.name;
  out.experiment = spec.experiment;
  out.results.resize(trials.size());
  const std::uint64_t hits0 = cache ? cache->hits() : 0;
  const std::uint64_t misses0 = cache ? cache->misses() : 0;
  parallelFor(trials.size(), jobs, [&](std::size_t idx) {
    TrialResult& slot = out.results[idx];
    slot.trial = std::move(trials[idx]);
    slot.metrics = runTrialCached(spec.experiment, slot.trial.config, cache, opts);
  });
  if (cache != nullptr) {
    out.cacheHits = static_cast<std::size_t>(cache->hits() - hits0);
    out.cacheMisses = static_cast<std::size_t>(cache->misses() - misses0);
  }

  for (const TrialResult& r : out.results) {
    if (!r.metrics.ok) {
      ++out.failures;
      continue;
    }
    out.bandwidthGBs.add(r.metrics.meanGBs);
    out.elapsedSec.add(r.metrics.elapsedSec);
  }
  return out;
}

}  // namespace hcsim::sweep
