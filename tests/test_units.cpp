#include "util/units.hpp"

#include <gtest/gtest.h>

namespace hcsim {
namespace {

TEST(Units, BinaryConstants) {
  EXPECT_EQ(units::KiB, 1024u);
  EXPECT_EQ(units::MiB, 1024u * 1024u);
  EXPECT_EQ(units::GiB, 1024u * 1024u * 1024u);
  EXPECT_EQ(units::TiB, units::GiB * 1024u);
  EXPECT_EQ(units::PiB, units::TiB * 1024u);
}

TEST(Units, DecimalConstants) {
  EXPECT_EQ(units::KB, 1000u);
  EXPECT_EQ(units::MB, 1000u * 1000u);
  EXPECT_EQ(units::GB, 1000u * 1000u * 1000u);
  EXPECT_EQ(units::PB, units::TB * 1000u);
}

TEST(Units, GbpsConvertsGigabitsToBytesPerSecond) {
  EXPECT_DOUBLE_EQ(units::gbps(8), 1e9);          // 8 Gb/s = 1 GB/s
  EXPECT_DOUBLE_EQ(units::gbps(100), 12.5e9);     // EDR InfiniBand
  EXPECT_DOUBLE_EQ(units::gbps(1), 0.125e9);      // Quartz gateway link
}

TEST(Units, GbsRoundTripsThroughToGBs) {
  EXPECT_DOUBLE_EQ(units::toGBs(units::gbs(12.34)), 12.34);
  EXPECT_DOUBLE_EQ(units::toGBs(units::gbs(0.0)), 0.0);
}

TEST(Units, TimeHelpers) {
  EXPECT_DOUBLE_EQ(units::usec(1), 1e-6);
  EXPECT_DOUBLE_EQ(units::msec(2.5), 2.5e-3);
  EXPECT_DOUBLE_EQ(units::nsec(100), 1e-7);
}

TEST(FormatBytes, ChoosesScale) {
  EXPECT_EQ(formatBytes(512), "512 B");
  EXPECT_EQ(formatBytes(units::KiB), "1.00 KiB");
  EXPECT_EQ(formatBytes(units::MiB + units::MiB / 2), "1.50 MiB");
  EXPECT_EQ(formatBytes(3 * units::GiB), "3.00 GiB");
}

TEST(FormatBytes, Zero) { EXPECT_EQ(formatBytes(0), "0 B"); }

TEST(FormatBandwidth, ChoosesScale) {
  EXPECT_EQ(formatBandwidth(units::gbs(12.5)), "12.50 GB/s");
  EXPECT_EQ(formatBandwidth(2.5e6), "2.50 MB/s");
  EXPECT_EQ(formatBandwidth(1.5e3), "1.50 KB/s");
  EXPECT_EQ(formatBandwidth(12.0), "12.00 B/s");
}

TEST(FormatSeconds, ChoosesScale) {
  EXPECT_EQ(formatSeconds(1.5), "1.500 s");
  EXPECT_EQ(formatSeconds(2.5e-3), "2.500 ms");
  EXPECT_EQ(formatSeconds(42e-6), "42.000 us");
  EXPECT_EQ(formatSeconds(5e-9), "5.0 ns");
}

}  // namespace
}  // namespace hcsim
