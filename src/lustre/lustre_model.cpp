#include "lustre/lustre_model.hpp"

#include <algorithm>
#include <stdexcept>

#include "telemetry/metrics_registry.hpp"

namespace hcsim {

namespace {
constexpr Bandwidth kUncapped = std::numeric_limits<Bandwidth>::infinity();
}

LustreModel::LustreModel(Simulator& sim, Topology& topo, LustreConfig config,
                         std::vector<LinkId> clientNics, std::uint64_t rngSeed)
    : StorageModelBase(sim, topo, config.name, std::move(clientNics), rngSeed),
      cfg_(std::move(config)),
      raid_(cfg_.hdd, cfg_.ossCount * cfg_.spindlesPerOss, cfg_.raidz2Overhead) {
  cfg_.validate();
  configureMetadataPath(cfg_.mdsCount, cfg_.metadataServiceTime, cfg_.mdsLatency,
                        cfg_.metadataSharedDirPenalty);
  configureSharedFilePenalty(cfg_.sharedFileLockLatency, cfg_.sharedFileEfficiency);
  ossLink_ = topology().addLink(cfg_.name + ".oss",
                                static_cast<double>(cfg_.ossCount) * cfg_.ossBandwidth,
                                cfg_.rpcLatency / 4);
  deviceLink_ = topology().addLink(
      cfg_.name + ".raidz2", raid_.effectiveBandwidth(AccessPattern::SequentialRead, units::MiB));
}

LinkId LustreModel::clientCapLink(std::uint32_t node) {
  auto it = clientCaps_.find(node);
  if (it != clientCaps_.end()) return it->second;
  const LinkId id =
      topology().addLink(cfg_.name + ".client.n" + std::to_string(node), cfg_.clientCap);
  clientCaps_.emplace(node, id);
  return id;
}

void LustreModel::applyCapacities() {
  const PhaseSpec& ph = phase();
  const Bytes req = ph.requestSize ? ph.requestSize : units::MiB;
  const double frac = ossFraction();
  FlowNetwork& net = topology().network();
  net.setLinkCapacity(ossLink_,
                      static_cast<double>(cfg_.ossCount) * cfg_.ossBandwidth * frac);
  net.setLinkCapacity(deviceLink_, raid_.effectiveBandwidth(ph.pattern, req) * frac);
}

void LustreModel::onPhaseChange() { applyCapacities(); }

double LustreModel::ossFraction() const {
  double alive = 0.0;
  for (std::size_t i = 0; i < cfg_.ossCount; ++i) {
    if (failedOss_.count(i)) continue;
    const auto slow = slowOss_.find(i);
    alive += slow == slowOss_.end() ? 1.0 : slow->second;
  }
  return alive / static_cast<double>(cfg_.ossCount);
}

void LustreModel::failOss(std::size_t index) {
  if (index >= cfg_.ossCount) throw std::out_of_range("failOss: bad index");
  failedOss_.insert(index);
  slowOss_.erase(index);  // fail-stop supersedes fail-slow
  applyCapacities();
}

void LustreModel::restoreOss(std::size_t index) {
  failedOss_.erase(index);
  slowOss_.erase(index);
  applyCapacities();
}

bool LustreModel::applyFault(const FaultSpec& f) {
  if (f.component == "oss") {
    if (f.index >= cfg_.ossCount) throw std::out_of_range("lustre: oss index out of range");
    switch (f.action) {
      case FaultAction::Fail:
        failOss(f.index);
        break;
      case FaultAction::FailSlow:
        slowOss_[f.index] = f.severity;
        applyCapacities();
        break;
      case FaultAction::Restore:
        restoreOss(f.index);
        break;
    }
    return true;
  }
  if (f.component == "mds") {
    if (f.index >= cfg_.mdsCount) throw std::out_of_range("lustre: mds index out of range");
    switch (f.action) {
      case FaultAction::Fail:
        failMds(f.index);
        break;
      case FaultAction::Restore:
        restoreMds(f.index);
        break;
      case FaultAction::FailSlow:
        throw std::invalid_argument("lustre: mds supports fail/restore only");
    }
    return true;
  }
  return false;
}

std::size_t LustreModel::faultComponentCount(const std::string& component) const {
  if (component == "oss") return cfg_.ossCount;
  if (component == "mds") return cfg_.mdsCount;
  return 0;
}

Route LustreModel::rebuildRoute(const FaultSpec&) { return {ossLink_, deviceLink_}; }

void LustreModel::failMds(std::size_t index) {
  if (index >= cfg_.mdsCount) throw std::out_of_range("failMds: bad index");
  failedMds_.insert(index);
  setActiveMetadataServers(aliveMds());
}

void LustreModel::restoreMds(std::size_t index) {
  failedMds_.erase(index);
  setActiveMetadataServers(aliveMds());
}

Bandwidth LustreModel::deviceCapacity() const {
  return topology().network().link(deviceLink_).capacity;
}

void LustreModel::exportMetrics(telemetry::MetricsRegistry& reg) const {
  StorageModelBase::exportMetrics(reg);
  const std::string& n = name();
  reg.gauge(n + ".device.capacity_bps", deviceCapacity());
  reg.gauge(n + ".oss.alive", static_cast<double>(aliveOss()));
  reg.gauge(n + ".mds.alive", static_cast<double>(aliveMds()));
}

void LustreModel::submit(const IoRequest& req, IoCallback cb) {
  if (req.bytes == 0) {
    const SimTime start = simulator().now();
    simulator().schedule(cfg_.mdsLatency, [cb = std::move(cb), start, this] {
      if (cb) cb(IoResult{start, simulator().now(), 0});
    });
    return;
  }

  if (aliveOss() == 0) {
    throw std::runtime_error(cfg_.name + ": all OSSs failed — store unavailable");
  }

  Route route;
  route.push_back(clientNic(req.client.node));
  route.push_back(clientCapLink(req.client.node));
  route.push_back(ossLink_);
  route.push_back(deviceLink_);

  // RPC round trips pipeline across the file's stripes (the client keeps
  // one RPC in flight per OST), so their dead time is divided by the
  // stripe count; fsync commits and random seeks serialize the process.
  Seconds pipelined = cfg_.rpcLatency / static_cast<double>(cfg_.stripeCount);
  Seconds serial = 0.0;
  if (!isRead(req.pattern)) {
    if (req.fsync) serial += cfg_.commitLatency;
  } else if (!isSequential(req.pattern)) {
    serial += cfg_.randomReadPenalty + raid_.requestLatency(req.pattern);
  }

  // Striping bounds a single process's parallelism: one process can keep
  // at most `stripeCount` OSTs busy. For a flow class the cap applies
  // per member (launchTransfer keeps it per-member and multiplies the
  // fair share by req.members), so N aggregated clients saturate exactly
  // what N explicit processes would.
  const Bandwidth stripeCap = static_cast<double>(cfg_.stripeCount) * cfg_.ossBandwidth;

  launchTransfer(req, req.bytes, route, stripeCap, pipelined + serial,
                 cfg_.rpcLatency + cfg_.mdsLatency, std::move(cb));
}


transport::TransportProfile LustreModel::declaredTransportProfile() const {
  transport::TransportProfile p = transport::TransportProfile::rdma();
  p.lanes = 1;
  p.baseRtt = cfg_.rpcLatency;
  return p;
}

}  // namespace hcsim
