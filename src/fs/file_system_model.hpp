#pragma once
// FileSystemModel — the contract between workload generators (IOR, DLIO)
// and storage-system models (VAST, GPFS, Lustre, node-local NVMe).
//
// The API is asynchronous and phase-oriented, mirroring how the paper's
// benchmarks behave:
//
//  * `beginPhase` declares a homogeneous access phase (IOR runs pure
//    sequential-write / sequential-read / random-read phases; DLIO reads
//    one sample size). Models use it to set pattern-dependent effective
//    device bandwidths and reset per-phase statistics.
//  * `submit` issues one request (or a coalesced run of `ops` identical
//    requests from one process — see DESIGN.md §5); the callback fires at
//    the simulated completion time.
//  * Requests with `fsync=true` include the flush-to-stable-storage wait,
//    reproducing IOR's -e behaviour used in the single-node tests.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "device/ssd.hpp"  // AccessPattern
#include "fs/fault.hpp"
#include "net/link.hpp"  // Route (rebuild traffic paths)
#include "sim/simulator.hpp"
#include "transport/transport_profile.hpp"
#include "util/units.hpp"

namespace hcsim {

namespace telemetry {
class MetricsRegistry;
}

namespace transport {
class TransportFabric;
}

/// Identifies the issuing process: compute node index + process rank on
/// that node. Models route traffic through node `node`'s NIC.
struct ClientId {
  std::uint32_t node = 0;
  std::uint32_t proc = 0;
};

struct IoRequest {
  ClientId client;
  std::uint64_t fileId = 0;  ///< N-N: unique per process; N-1: shared
  Bytes offset = 0;
  Bytes bytes = 0;  ///< TOTAL bytes of this (possibly coalesced) request
  AccessPattern pattern = AccessPattern::SequentialRead;
  bool fsync = false;        ///< flush after every underlying op
  /// N-1 (shared-file) access: every op pays lock acquisition and the
  /// stream loses efficiency to lock ping-pong — "the contention, file
  /// locking and metadata overhead it introduces" (paper §IV-C1), the
  /// reason the paper benchmarks N-N instead.
  bool sharedFile = false;
  std::uint64_t ops = 1;     ///< number of coalesced same-size operations
  /// Number of identical concurrent processes this request aggregates
  /// (scalability runs coalesce a node's symmetric ranks into one flow;
  /// per-process rate ceilings are multiplied by this).
  std::uint32_t streams = 1;
  /// Flow-class member count (hcsim::scale): this request stands for
  /// `members` identical clients, each transferring `bytes`. Unlike
  /// `streams` (one flow with a multiplied ceiling), a class keeps the
  /// per-member ceiling AND claims `members` fair shares of contended
  /// links — byte-identical to `members` symmetric clients submitting
  /// the request concurrently (see docs/SCALE.md for the contract).
  /// Completion reports aggregate bytes (`bytes * members`).
  std::uint32_t members = 1;
  /// QoS weight (> 0): the share of contended links this request's
  /// traffic receives relative to other traffic (weighted max-min).
  double qosWeight = 1.0;
};

struct IoResult {
  SimTime startTime = 0.0;
  SimTime endTime = 0.0;
  Bytes bytes = 0;
  /// Set by the retry layer when an op exhausted its retries against a
  /// failed component (bytes == 0 then). Models never set this.
  bool failed = false;
  Seconds elapsed() const { return endTime - startTime; }
};

using IoCallback = std::function<void(const IoResult&)>;

/// Metadata operations (the MDTest workload: create/stat/remove storms).
enum class MetaOp { Create, Stat, Open, Close, Remove };

const char* toString(MetaOp op);

struct MetaRequest {
  ClientId client;
  MetaOp op = MetaOp::Stat;
  std::uint64_t fileId = 0;
  /// True when every process works in ONE shared directory — the
  /// contended MDTest mode where directory locks serialize; false for
  /// unique-directory-per-task (-u).
  bool sharedDirectory = true;
};

/// Declared once per homogeneous benchmark phase.
struct PhaseSpec {
  AccessPattern pattern = AccessPattern::SequentialRead;
  Bytes requestSize = 0;           ///< per-op transfer size
  std::uint32_t nodes = 1;         ///< compute nodes participating
  std::uint32_t procsPerNode = 1;  ///< ranks per node
  /// True when the phase reads data written by a *different* client than
  /// the reader (the paper does this deliberately to defeat client-side
  /// read caches); models must not grant client-cache hits.
  bool readerDiffersFromWriter = true;
  /// Total bytes the phase touches across all clients (0 = unknown).
  /// Server/DNode-side caches compare this against their capacity to
  /// derive hit ratios — the mechanism behind "requests are majorly
  /// served by GPFS's caches" for small DL datasets.
  Bytes workingSetBytes = 0;
  /// Every write in this phase is followed by fsync (IOR -e). Models with
  /// volatile write caches (node-local NVMe) lose them in such phases.
  bool fsync = false;
};

class FileSystemModel {
 public:
  virtual ~FileSystemModel() = default;

  virtual const std::string& name() const = 0;

  /// Declare the start of a homogeneous access phase.
  virtual void beginPhase(const PhaseSpec& phase) = 0;

  /// Declare the end of the phase (models may clear phase state).
  virtual void endPhase() = 0;

  /// Issue a request; `cb` fires once at completion.
  virtual void submit(const IoRequest& req, IoCallback cb) = 0;

  /// Issue a metadata operation; `cb` fires once at completion (with
  /// bytes == 0). Models route it through their metadata service
  /// (CNodes/SCM for VAST, token-managed NSD metadata for GPFS, the MDS
  /// pool for Lustre, the local kernel for node-local NVMe).
  virtual void submitMeta(const MetaRequest& req, IoCallback cb) = 0;

  /// Total capacity (for reports; the paper contrasts GPFS 24 PB vs
  /// VAST 5.2 PB).
  virtual Bytes totalCapacity() const = 0;

  /// How many distinct parallel channels one client node drives (NFS
  /// nconnect sessions for VAST; 1 otherwise). Workload runners that
  /// aggregate a node's ranks into flows must keep this many distinct
  /// `client.proc` slots so every channel stays loaded.
  virtual std::size_t clientParallelism() const { return 1; }

  // ---- NIC/transport modeling (hcsim::transport) ----

  /// The first-principles endpoint profile this model's clients would
  /// use when a spec's "transport" section routes traffic through
  /// hcsim::transport. Models derive it from their own frontend config
  /// (VAST: tcp-vs-rdma + nconnect lanes); the default is a plain
  /// kernel TCP endpoint. A spec section is merged on top, so each
  /// knob is individually overridable and sweepable.
  virtual transport::TransportProfile declaredTransportProfile() const {
    return transport::TransportProfile::tcp();
  }

  /// Attach (or detach with nullptr) a transport fabric: data transfers
  /// are then posted through it instead of directly onto the flow
  /// network. No fabric attached (the default) must be byte-identical
  /// to a build without hcsim::transport — the zero-cost contract.
  virtual void setTransport(transport::TransportFabric*) {}

  // ---- Dynamic fault injection (hcsim::chaos) ----

  /// Apply one fault directive mid-run. Models that support the
  /// component kind degrade/restore immediately (in-flight transfers
  /// re-rate) and return true; the default knows no components. Throws
  /// std::out_of_range for an index beyond faultComponentCount and
  /// std::invalid_argument for an action the component cannot take
  /// (e.g. fail-slow on an HA enclosure).
  virtual bool applyFault(const FaultSpec&) { return false; }

  /// How many instances of a named component kind this model has
  /// (0 = kind unknown). Used by schedule validation.
  virtual std::size_t faultComponentCount(const std::string& component) const {
    (void)component;
    return 0;
  }

  /// The route rebuild/resync traffic takes after `restored` comes back
  /// (RAID rebuild, re-replication): a flow over it competes with the
  /// foreground for the model's internal links. Empty = no rebuild path.
  virtual Route rebuildRoute(const FaultSpec& restored) {
    (void)restored;
    return {};
  }

  /// Snapshot model-internal state (queue depths, cache hit ratios, SCM
  /// occupancy, surviving servers, ...) into the telemetry registry
  /// under "<model>.*" names. Pull-based: called at report time, never
  /// on the simulation path; the default exports nothing.
  virtual void exportMetrics(telemetry::MetricsRegistry&) const {}
};

}  // namespace hcsim
