// trace_analysis — work with the DFTracer-substitute directly: run a
// small training, dump raw events, compute the §VI-A breakdown by hand
// (per process), and verify the chrome-trace JSON round-trips the data.

#include <cstdio>

#include "core/experiment.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/overlap_analysis.hpp"

using namespace hcsim;

int main() {
  std::printf("== Trace capture and analysis walkthrough ==\n\n");

  DlioConfig cfg;
  cfg.workload = DlioWorkload::resnet50();
  cfg.workload.samples = 24;  // tiny run so the event dump stays readable
  cfg.nodes = 1;
  cfg.procsPerNode = 2;
  DlioResult r = runDlio(Site::Lassen, StorageKind::Vast, cfg);

  std::printf("captured %zu events (%zu reads, %zu computes)\n", r.trace.size(),
              r.trace.count(TraceEventKind::Read), r.trace.count(TraceEventKind::Compute));

  std::printf("\nfirst 10 events (DFTracer-style):\n");
  std::printf("  %-12s %-8s %3s %3s %12s %12s %10s\n", "name", "kind", "pid", "tid", "start ms",
              "dur ms", "bytes");
  std::size_t shown = 0;
  for (const TraceEvent& e : r.trace.events()) {
    if (shown++ >= 10) break;
    std::printf("  %-12s %-8s %3u %3u %12.3f %12.3f %10llu\n", e.name.c_str(), toString(e.kind),
                e.pid, e.tid, e.start * 1e3, e.duration * 1e3,
                static_cast<unsigned long long>(e.bytes));
  }

  const IoTimeBreakdown b = analyzeOverlap(r.trace);
  std::printf("\nruntime split (the paper's Fig 4 definitions):\n");
  std::printf("  non-overlapping I/O : %s  (stalls the GPU)\n",
              formatSeconds(b.nonOverlappingIo).c_str());
  std::printf("  overlapping I/O     : %s  (hidden behind compute)\n",
              formatSeconds(b.overlappingIo).c_str());
  std::printf("  compute-only        : %s\n", formatSeconds(b.computeOnly).c_str());
  std::printf("  wall runtime        : %s\n", formatSeconds(b.runtime).c_str());

  const ThroughputReport tp = computeThroughput(r.trace);
  std::printf("\nthroughput (Fig 5 definitions):\n");
  std::printf("  application (bytes / exposed I/O): %s\n",
              formatBandwidth(tp.application).c_str());
  std::printf("  system      (bytes / total I/O)  : %s\n", formatBandwidth(tp.system).c_str());

  const std::string json = toChromeTraceJson(r.trace);
  std::printf("\nchrome-trace export: %zu bytes of JSON (load into Perfetto)\n", json.size());
  return 0;
}
