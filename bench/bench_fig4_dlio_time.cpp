// Fig 4 — "I/O time analysis": non-overlapping vs overlapping I/O time
// for ResNet-50 (weak scaling, 1 epoch) and Cosmoflow (strong scaling,
// 4 epochs) on VAST vs GPFS on Lassen, traced with the DFTracer
// substitute and split per §VI-A.

#include <cstdio>

#include "core/experiment.hpp"
#include "util/table.hpp"

using namespace hcsim;

namespace {

void panel(const char* title, const DlioWorkload& workload, std::size_t maxNodes) {
  ResultTable t(title);
  t.setHeader({"nodes", "fs", "non-overlap I/O s", "overlap I/O s", "total I/O s",
               "compute s", "runtime s"});
  t.setPrecision(3);
  for (std::size_t nodes = 1; nodes <= maxNodes; nodes *= 2) {
    for (StorageKind kind : {StorageKind::Vast, StorageKind::Gpfs}) {
      DlioConfig cfg;
      cfg.workload = workload;
      cfg.nodes = nodes;
      cfg.procsPerNode = 4;  // one rank per Lassen GPU
      const DlioResult r = runDlio(Site::Lassen, kind, cfg);
      t.addRow({static_cast<double>(nodes), std::string(toString(kind)),
                r.breakdown.nonOverlappingIo, r.breakdown.overlappingIo, r.breakdown.totalIo,
                r.breakdown.totalCompute, r.runtime});
    }
  }
  std::printf("%s\n", t.toString().c_str());
}

}  // namespace

int main() {
  std::printf("== Fig 4: DLIO I/O time analysis on Lassen (VAST vs GPFS) ==\n\n");
  panel("Fig 4a: ResNet-50 (weak scaling, 1 epoch, 8 I/O threads)",
        DlioWorkload::resnet50(), 32);
  panel("Fig 4b: Cosmoflow (strong scaling, 4 epochs, 4 I/O threads)",
        DlioWorkload::cosmoflow(), 32);
  return 0;
}
