#include "dlio/dlio_config.hpp"

#include <algorithm>
#include <stdexcept>

namespace hcsim {

const char* toString(ScalingMode m) {
  switch (m) {
    case ScalingMode::Weak: return "weak";
    case ScalingMode::Strong: return "strong";
  }
  return "?";
}

DlioWorkload DlioWorkload::resnet50() {
  DlioWorkload w;
  w.name = "resnet50";
  w.samples = 256;  // per rank; 1 node x 4 ranks = the paper's 1024 samples
  w.sampleSize = 150 * units::KB;
  w.transferSize = 150 * units::KB;  // one read per JPEG
  w.batchSize = 1;
  w.epochs = 1;
  w.ioThreads = 8;
  w.computeThreads = 8;
  w.prefetchDepth = 8;
  w.computeTimePerBatch = units::msec(40);  // batch-1 step on a V100
  w.scaling = ScalingMode::Weak;
  return w;
}

DlioWorkload DlioWorkload::cosmoflow() {
  DlioWorkload w;
  w.name = "cosmoflow";
  w.samples = 1024;  // total; strong scaling splits it across ranks
  w.sampleSize = 3 * units::MB;
  w.transferSize = 256 * units::KB;  // "remains constant at 256 KB"
  w.batchSize = 1;
  w.epochs = 4;
  w.ioThreads = 4;      // "four threads for the I/O data pipeline"
  w.computeThreads = 8;  // "eight threads per process for computation"
  w.prefetchDepth = 4;
  w.computeTimePerBatch = units::msec(120);
  w.scaling = ScalingMode::Strong;
  return w;
}

DlioWorkload DlioWorkload::unet3d() {
  DlioWorkload w;
  w.name = "unet3d";
  w.samples = 42;  // per rank (weak): KiTS19-scale volumes
  w.sampleSize = 140 * units::MB;
  w.transferSize = 4 * units::MB;  // npz chunked reads
  w.batchSize = 1;
  w.epochs = 2;
  w.ioThreads = 4;
  w.computeThreads = 8;
  w.prefetchDepth = 4;
  w.computeTimePerBatch = units::msec(350);  // 3D conv per volume
  w.scaling = ScalingMode::Weak;
  w.checkpointEvery = 21;  // twice per epoch
  w.checkpointBytes = units::GB;
  return w;
}

std::size_t DlioConfig::samplesPerRank() const {
  if (workload.scaling == ScalingMode::Weak) return workload.samples;
  return std::max<std::size_t>(1, workload.samples / totalRanks());
}

Bytes DlioConfig::datasetBytes() const {
  const std::size_t total = workload.scaling == ScalingMode::Weak
                                ? workload.samples * totalRanks()
                                : workload.samples;
  return static_cast<Bytes>(total) * workload.sampleSize;
}

void DlioConfig::validate() const {
  if (workload.samples == 0 || workload.sampleSize == 0 || workload.transferSize == 0) {
    throw std::invalid_argument("DlioConfig: workload geometry must be non-zero");
  }
  if (workload.batchSize == 0 || workload.epochs == 0 || workload.ioThreads == 0) {
    throw std::invalid_argument("DlioConfig: batchSize/epochs/ioThreads must be > 0");
  }
  if (workload.prefetchDepth == 0) {
    throw std::invalid_argument("DlioConfig: prefetchDepth must be > 0");
  }
  if (nodes == 0 || procsPerNode == 0) {
    throw std::invalid_argument("DlioConfig: nodes and procsPerNode must be > 0");
  }
  if (workload.computeTimePerBatch < 0.0) {
    throw std::invalid_argument("DlioConfig: computeTimePerBatch must be >= 0");
  }
}

}  // namespace hcsim
