#pragma once
// Solid-state device models.
//
// An SsdSpec captures the two figures the paper's analysis depends on:
// streaming bandwidth (read/write separately — QLC flash writes far slower
// than it reads) and per-request latency (SCM's "100ns..30us" ultra-low
// random latency vs QLC's higher one). SsdArray aggregates N identical
// devices behind one pool, which is how VAST DBoxes (22 QLC + 6 SCM per
// box) and node-local NVMe (3x Samsung 970 PRO) are wired.

#include <cstddef>
#include <string>

#include "util/units.hpp"

namespace hcsim {

/// Access pattern of an I/O phase; decides device efficiency.
enum class AccessPattern { SequentialRead, SequentialWrite, RandomRead, RandomWrite };

inline bool isRead(AccessPattern p) {
  return p == AccessPattern::SequentialRead || p == AccessPattern::RandomRead;
}
inline bool isSequential(AccessPattern p) {
  return p == AccessPattern::SequentialRead || p == AccessPattern::SequentialWrite;
}

const char* toString(AccessPattern p);

struct SsdSpec {
  std::string name;
  Bandwidth readBandwidth = 0.0;   ///< streaming read, bytes/s
  Bandwidth writeBandwidth = 0.0;  ///< streaming write, bytes/s
  Seconds readLatency = 0.0;       ///< per-request access latency
  Seconds writeLatency = 0.0;
  /// Random-access efficiency in (0,1]: fraction of streaming bandwidth
  /// retained under random access at large request sizes (flash has no
  /// seek, so this stays near 1; the paper's VAST random~=sequential
  /// observation rests on it).
  double randomEfficiency = 1.0;

  // --- Presets (values from public datasheets / the paper's description) ---

  /// Storage Class Memory SSD: VAST's write buffer & metadata tier.
  /// "ultra-low latency (100 nanoseconds to 30 microseconds)".
  static SsdSpec scm();

  /// Hyperscale QLC flash: VAST's capacity tier. Reads fast; sustained
  /// writes much slower (QLC programming), which VAST hides behind SCM.
  static SsdSpec qlc();

  /// Samsung 970 PRO (PCIe Gen3x4): Wombat's node-local NVMe.
  /// Datasheet: ~3.5 GB/s read, ~2.7 GB/s write.
  static SsdSpec samsung970Pro();

  /// SAS SSD used in Lustre MDS ZFS mirrors.
  static SsdSpec sasSsd();
};

/// N identical SSDs treated as one pool. Effective pool bandwidth for a
/// phase = N * per-device streaming bandwidth, derated by the random
/// efficiency and by small-request latency amortization:
///
///   perDevice(pattern, reqSize) =
///       reqSize / (latency + reqSize / (bw * eff))
///
/// which tends to bw*eff for large requests and latency-bound IOPS for
/// small ones.
class SsdArray {
 public:
  SsdArray(SsdSpec spec, std::size_t count);

  const SsdSpec& spec() const { return spec_; }
  std::size_t count() const { return count_; }

  /// Aggregate effective bandwidth for a homogeneous access phase.
  Bandwidth effectiveBandwidth(AccessPattern pattern, Bytes requestSize) const;

  /// Per-request device latency for the pattern.
  Seconds requestLatency(AccessPattern pattern) const;

 private:
  SsdSpec spec_;
  std::size_t count_;
};

}  // namespace hcsim
