file(REMOVE_RECURSE
  "CMakeFiles/test_dlio.dir/test_dlio.cpp.o"
  "CMakeFiles/test_dlio.dir/test_dlio.cpp.o.d"
  "test_dlio"
  "test_dlio.pdb"
  "test_dlio[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dlio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
