#include "trace/chrome_trace.hpp"

#include <fstream>
#include <sstream>

#include "util/json.hpp"

namespace hcsim {

std::string toChromeTraceJson(const TraceLog& log) {
  // Streamed emission (traces can be large; building a JsonValue tree
  // would double the memory).
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& e : log.events()) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << jsonEscape(e.name) << "\",\"cat\":\"" << toString(e.kind)
       << "\",\"ph\":\"X\",\"ts\":" << e.start * 1e6 << ",\"dur\":" << e.duration * 1e6
       << ",\"pid\":" << e.pid << ",\"tid\":" << e.tid << ",\"args\":{\"bytes\":" << e.bytes
       << "}}";
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
  return os.str();
}

bool writeChromeTrace(const TraceLog& log, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << toChromeTraceJson(log);
  return static_cast<bool>(out);
}

}  // namespace hcsim
