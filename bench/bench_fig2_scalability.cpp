// Fig 2 — "Scalability test results for scientific simulations, data
// analytics and ML applications."
//
//  (a) Lassen: VAST vs GPFS, 44 procs/node, 1..128 nodes
//  (b) Wombat: VAST vs NVMe, 48 procs/node, 1..8 nodes
//
// Three workloads simulated with IOR exactly as §IV-C1: sequential write
// (scientific), sequential read (data analytics), random read (ML);
// POSIX N-N, 1 MiB block/transfer, 3000 segments (~120 GB/node), reads
// issued by a different client than the writer, 10 repetitions.

#include <cstdio>

#include "core/calibration.hpp"
#include "core/sweep.hpp"

using namespace hcsim;

namespace {

constexpr double kNoise = 0.03;
constexpr std::size_t kReps = calibration::kRepetitions;

void panel(const char* figure, Site site, StorageKind a, StorageKind b, std::size_t maxNodes,
           std::size_t ppn) {
  const auto nodeCounts = powersOfTwo(maxNodes);
  const struct {
    const char* name;
    AccessPattern pattern;
  } workloads[] = {
      {"scientific (seq write)", AccessPattern::SequentialWrite},
      {"data analytics (seq read)", AccessPattern::SequentialRead},
      {"ML (random read)", AccessPattern::RandomRead},
  };
  for (const auto& w : workloads) {
    std::vector<Series> series;
    for (StorageKind kind : {a, b}) {
      Series s;
      s.label = toString(kind);
      s.points = runIorNodeSweep(site, kind, w.pattern, nodeCounts, ppn, kReps, kNoise);
      series.push_back(std::move(s));
    }
    ResultTable t = makeFigureTable(std::string(figure) + " " + toString(site) + " — " + w.name,
                                    "nodes", series, /*spread=*/true);
    std::printf("%s\n", t.toString().c_str());
  }
}

}  // namespace

int main() {
  std::printf("== Fig 2: IOR scalability, full nodes, ~120 GB/node ==\n\n");
  panel("Fig 2a", Site::Lassen, StorageKind::Vast, StorageKind::Gpfs,
        calibration::kScalabilityMaxNodesLassen, calibration::kLassenProcsPerNode);
  panel("Fig 2b", Site::Wombat, StorageKind::Vast, StorageKind::NvmeLocal,
        calibration::kScalabilityMaxNodesWombat, calibration::kWombatProcsPerNode);
  return 0;
}
