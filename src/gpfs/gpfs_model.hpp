#pragma once
// GpfsModel — the traditional parallel-file-system baseline (Fig 1b).
//
// Data path:
//
//   client NIC -> per-node GPFS client ceiling -> NSD server pool
//     -> {server cache | HDD RAID pool}
//
// Behaviours the model encodes (paper §V, §VII takeaways):
//  * deep server-side caches + aggressive prefetch give very fast
//    *sequential* reads (~14.5 GB/s per node, saturating ~32 nodes);
//  * random reads thrash the prefetcher and pay HDD seeks — a ~90%
//    per-node collapse, while aggregate capacity still scales with the
//    large spindle count (so the Fig 2a random curve keeps growing
//    through 128 nodes);
//  * writes stream through the pagepool to RAID with a moderate per-node
//    ceiling, scaling near-linearly (Fig 2a).

#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "device/hdd_raid.hpp"
#include "fs/storage_base.hpp"
#include "gpfs/gpfs_config.hpp"

namespace hcsim {

class GpfsModel final : public StorageModelBase {
 public:
  GpfsModel(Simulator& sim, Topology& topo, GpfsConfig config, std::vector<LinkId> clientNics,
            std::uint64_t rngSeed = 0x6bf5ull);

  const GpfsConfig& config() const { return cfg_; }

  void submit(const IoRequest& req, IoCallback cb) override;
  Bytes totalCapacity() const override { return cfg_.capacityTotal; }

  /// GPFS NSD client endpoint: one kernel TCP-style lane per node.
  transport::TransportProfile declaredTransportProfile() const override;

  // ---- Failure injection ----
  /// Fail/restore an NSD server: the server pool, RAID pool and cache
  /// shrink proportionally; in-flight transfers re-rate immediately.
  void failNsdServer(std::size_t index);
  void restoreNsdServer(std::size_t index);
  std::size_t aliveNsdServers() const { return cfg_.nsdServers - failedNsd_.size(); }

  /// Declarative fault hook (hcsim::chaos): "nsd" supports
  /// fail/fail-slow/restore; a fail-slow server contributes `severity`
  /// of a healthy server to the pool, RAID and cache fractions.
  bool applyFault(const FaultSpec& f) override;
  std::size_t faultComponentCount(const std::string& component) const override;
  /// Rebuild after a restore: RAID resync between the NSD pool and the
  /// spindles, competing with foreground streams on both.
  Route rebuildRoute(const FaultSpec& restored) override;

  // ---- Introspection ----
  double phaseServerCacheHitRatio() const { return hitRatio_; }
  Bandwidth deviceCapacity() const;
  /// Bytes currently in flight from clients outside the active phase's
  /// node range (background tenants on the shared machine).
  Bytes backgroundBytesInFlight() const { return backgroundInFlight_; }

  void exportMetrics(telemetry::MetricsRegistry& reg) const override;

 protected:
  void onPhaseChange() override;

 private:
  LinkId clientCapLink(std::uint32_t node);
  /// Reapply phase + failure-dependent capacities.
  void applyCapacities();
  /// Healthy-equivalent fraction of the NSD pool: failed servers count
  /// 0, fail-slow servers their severity, healthy servers 1.
  double nsdFraction() const;
  /// Re-derive the phase's server-cache hit ratio. Called on phase
  /// change AND on every mid-phase fail/fail-slow/restore — the cache
  /// shrinks with the pool, so a stale ratio would keep serving reads
  /// at pre-failure speed (latent staleness fixed with hcsim::chaos).
  void recomputeHitRatio();

  GpfsConfig cfg_;
  HddRaid raid_;
  LinkId serverLink_{};
  LinkId deviceLink_{};
  std::unordered_map<std::uint32_t, LinkId> clientCaps_;
  std::set<std::size_t> failedNsd_;
  std::map<std::size_t, double> slowNsd_;  ///< index -> fail-slow severity
  double hitRatio_ = 0.0;
  Bytes backgroundInFlight_ = 0;
};

}  // namespace hcsim
