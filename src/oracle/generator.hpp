#pragma once
// Seeded trial-config generators for the oracle's metamorphic relations.
//
// A generator starts from a site's preset deployment, perturbs a curated
// set of storage knobs — each addressed by the dotted JSON path the
// config serializer emits and validated against the serializer's path
// enumeration at construction, so a renamed field fails loudly instead
// of silently un-perturbing a knob — and randomizes the IOR geometry
// within paper-scale bounds. Every case is deterministic in its seed.

#include <cstdint>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "util/json.hpp"

namespace hcsim::oracle {

/// One perturbable storage knob: a dotted path into the serialized
/// storage config plus the multiplicative range drawn from when the
/// knob is perturbed. Integer knobs round and clamp to >= 1.
struct Knob {
  std::string path;
  double lo = 0.75;
  double hi = 1.5;
  bool integer = false;
};

const char* siteName(Site s);
const char* storageName(StorageKind k);

/// The serialized preset deployment of `kind` as reached from `site`
/// (what `hcsim dump-config` prints).
JsonValue presetJson(Site site, StorageKind kind);

/// The default knob table for a storage system: knobs whose perturbation
/// must preserve every relation the catalog states about that system.
std::vector<Knob> defaultKnobs(StorageKind kind);

class ConfigGenerator {
 public:
  /// Throws std::logic_error when a knob path does not resolve to a
  /// numeric leaf of the preset's serialization (serializer drift).
  ConfigGenerator(Site site, StorageKind kind, std::vector<Knob> knobs);
  ConfigGenerator(Site site, StorageKind kind)
      : ConfigGenerator(site, kind, defaultKnobs(kind)) {}

  Site site() const { return site_; }
  StorageKind kind() const { return kind_; }
  const std::vector<Knob>& knobs() const { return knobs_; }

  /// A base trial config {"site","storage","ior":{...},"storageConfig":
  /// {...}} for one case: paper-scale coalesced IOR geometry (noise 0,
  /// repetitions 1) and each knob perturbed with probability 1/2.
  /// Deterministic in (site, kind, knob table, seed, access).
  JsonValue makeBase(std::uint64_t seed, AccessPattern access) const;

 private:
  Site site_;
  StorageKind kind_;
  std::vector<Knob> knobs_;
  JsonValue preset_;
};

}  // namespace hcsim::oracle
