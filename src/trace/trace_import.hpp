#pragma once
// Chrome-trace import — round-trip support for the DFTracer-substitute:
// parse the JSON emitted by toChromeTraceJson() (or DFTracer-compatible
// complete-event traces) back into a TraceLog, so captured runs can be
// re-analysed offline.

#include <string>

#include "trace/trace_log.hpp"

namespace hcsim {

/// Parse a chrome trace from a JSON string. Accepts "X" (complete)
/// events with ts/dur in microseconds; the `cat` field maps to the event
/// kind ("read"/"write"/"compute", anything else -> Other). Non-"X"
/// events are skipped. Returns false on malformed input (log untouched).
bool parseChromeTraceJson(const std::string& json, TraceLog& out);

/// Read and parse a trace file. Returns false on I/O or parse failure.
bool readChromeTrace(const std::string& path, TraceLog& out);

}  // namespace hcsim
