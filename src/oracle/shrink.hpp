#pragma once
// Counterexample shrinking for failed metamorphic cases.
//
// A monotonicity violation is first observed between two axis values
// that may be far apart ("bandwidth dropped somewhere between 1 and 8
// stripes"). bisectAxis narrows the interval to the tightest pair that
// still violates, so the report names the exact cliff — the minimal
// failing config — instead of the whole span.

#include <cstddef>
#include <functional>
#include <string>

#include "util/json.hpp"

namespace hcsim::oracle {

struct ShrinkResult {
  std::string axis;
  double lo = 0.0;  ///< tightest still-failing pair: metric drops lo -> hi
  double hi = 0.0;
  std::size_t probes = 0;       ///< pairFails evaluations spent
  bool spanning = false;        ///< violation needs the full [lo, hi] span
  JsonValue minimalConfig;      ///< base with axis at `hi` (the dropped side)
  std::string summary;          ///< one-line human report
};

/// Predicate: does the relation still fail between axis values (lo, hi)?
using PairFails = std::function<bool(double lo, double hi)>;

/// Bisect the failing interval [lo, hi] of a numeric axis. When neither
/// half fails on its own the violation only manifests across the whole
/// span; that is reported rather than looped on. Integer axes stop at
/// adjacent values, real axes after maxSteps halvings.
ShrinkResult bisectAxis(const JsonValue& base, const std::string& axis, double lo, double hi,
                        bool integerAxis, const PairFails& pairFails, std::size_t maxSteps = 12);

}  // namespace hcsim::oracle
