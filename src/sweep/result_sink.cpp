#include "sweep/result_sink.hpp"

#include <fstream>
#include <sstream>

namespace hcsim::sweep {

namespace {

JsonValue paramsObject(const Trial& trial) {
  JsonObject o;
  for (const auto& [path, v] : trial.params) o[path] = deepCopy(v);
  return JsonValue(std::move(o));
}

std::string csvField(const JsonValue& v) {
  if (const std::string* s = v.str()) {
    if (s->find_first_of(",\"\n") == std::string::npos) return *s;
    std::string quoted = "\"";
    for (char c : *s) {
      if (c == '"') quoted += '"';
      quoted += c;
    }
    quoted += '"';
    return quoted;
  }
  return writeJson(v);
}

std::string formatDouble(double d) {
  return writeJson(JsonValue(d));  // same formatting as the JSONL output
}

}  // namespace

std::string paramsKey(const Trial& trial) { return writeJson(paramsObject(trial)); }

std::string toJsonlLine(const TrialResult& r) {
  JsonObject o;
  o["trial"] = static_cast<double>(r.trial.index);
  o["params"] = paramsObject(r.trial);
  JsonObject m;
  m["ok"] = r.metrics.ok;
  if (r.metrics.ok) {
    m["meanGBs"] = r.metrics.meanGBs;
    m["minGBs"] = r.metrics.minGBs;
    m["maxGBs"] = r.metrics.maxGBs;
    m["elapsedSec"] = r.metrics.elapsedSec;
    m["bytes"] = r.metrics.bytesMoved;
    // Latency-capable trials always carry the key: null states "this
    // run had no per-op operations" (e.g. IOR Coalesced mode), which a
    // zero-filled summary would silently misreport.
    if (r.metrics.latencyCapable) {
      if (r.metrics.hasOpLatency) {
        JsonObject lat;
        lat["count"] = r.metrics.opCount;
        lat["p50"] = r.metrics.opP50;
        lat["p95"] = r.metrics.opP95;
        lat["p99"] = r.metrics.opP99;
        m["opLatency"] = JsonValue(std::move(lat));
      } else {
        m["opLatency"] = JsonValue();  // null, not zeros
      }
    }
    // Telemetry lives in its own sub-object so a telemetry-off run and
    // the simulation columns of a telemetry-on run stay byte-identical.
    if (r.metrics.hasTelemetry) {
      JsonObject t;
      t["rerates"] = r.metrics.rerates;
      t["eventsScheduled"] = r.metrics.eventsScheduled;
      t["eventsCancelled"] = r.metrics.eventsCancelled;
      t["eventsAdjusted"] = r.metrics.eventsAdjusted;
      t["eventsDispatched"] = r.metrics.eventsDispatched;
      t["dominantStage"] = r.metrics.dominantStage;
      t["dominantSharePct"] = r.metrics.dominantSharePct;
      m["telemetry"] = JsonValue(std::move(t));
    }
    // Watchdog and self-profile live in their own sub-objects for the
    // same reason as telemetry: absent features leave the line
    // byte-identical to a build without them.
    if (r.metrics.hasMonitors) {
      JsonObject p;
      p["monitors"] = r.metrics.monitors;
      p["breaches"] = r.metrics.breaches;
      m["probe"] = JsonValue(std::move(p));
    }
    if (r.metrics.hasSelf) {
      JsonObject sp;
      sp["dispatchSec"] = r.metrics.selfDispatchSec;
      sp["callbackSec"] = r.metrics.selfCallbackSec;
      sp["solveSec"] = r.metrics.selfSolveSec;
      sp["telemetrySec"] = r.metrics.selfTelemetrySec;
      sp["sinkSec"] = r.metrics.selfSinkSec;
      m["self"] = JsonValue(std::move(sp));
    }
    // NIC/transport endpoint counters — present only when the trial ran
    // with a fabric attached, and LAST so every older header/line shape
    // stays a byte-prefix of the new one.
    if (r.metrics.hasTransport) {
      JsonObject tr;
      tr["ops"] = r.metrics.transportOps;
      tr["bytes"] = r.metrics.transportBytes;
      tr["throttleSec"] = r.metrics.transportThrottleSec;
      tr["connSetups"] = r.metrics.transportConnSetups;
      tr["sqWaits"] = r.metrics.transportSqWaits;
      tr["doorbells"] = r.metrics.transportDoorbells;
      m["transport"] = JsonValue(std::move(tr));
    }
  } else {
    m["error"] = r.metrics.error;
  }
  o["metrics"] = JsonValue(std::move(m));
  return writeJson(JsonValue(std::move(o)));
}

bool writeJsonl(const SweepOutcome& out, const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  for (const TrialResult& r : out.results) f << toJsonlLine(r) << "\n";
  return static_cast<bool>(f);
}

std::string toCsv(const SweepOutcome& out) {
  // Telemetry columns appear only when some trial carried telemetry, so
  // a telemetry-off CSV is byte-identical to the pre-telemetry format.
  bool anyTelemetry = false;
  bool anyLatency = false;
  bool anyMonitors = false;
  bool anySelf = false;
  bool anyTransport = false;
  for (const TrialResult& r : out.results) {
    anyTelemetry |= r.metrics.hasTelemetry;
    anyLatency |= r.metrics.latencyCapable;
    anyMonitors |= r.metrics.hasMonitors;
    anySelf |= r.metrics.hasSelf;
    anyTransport |= r.metrics.hasTransport;
  }
  std::ostringstream os;
  os << "trial";
  if (!out.results.empty()) {
    for (const auto& [path, v] : out.results.front().trial.params) {
      (void)v;
      os << "," << path;
    }
  }
  os << ",ok,meanGBs,minGBs,maxGBs,elapsedSec,bytes,error";
  // Latency columns stay empty — not zero — for trials that collected
  // no per-op distribution (the CSV face of the null contract). They
  // precede the telemetry block so a telemetry-off header stays a
  // prefix of the telemetry-on one.
  if (anyLatency) os << ",opCount,opP50,opP95,opP99";
  if (anyTelemetry) {
    os << ",rerates,eventsScheduled,eventsCancelled,eventsAdjusted,eventsDispatched"
          ",dominantStage,dominantSharePct";
  }
  if (anyMonitors) os << ",monitors,breaches";
  if (anySelf) os << ",selfDispatchSec,selfCallbackSec,selfSolveSec,selfTelemetrySec,selfSinkSec";
  // Transport columns come last of all, keeping every fabric-off header
  // a byte-prefix of the fabric-on one.
  if (anyTransport) {
    os << ",transportOps,transportBytes,transportThrottleSec,transportConnSetups"
          ",transportSqWaits,transportDoorbells";
  }
  os << "\n";
  for (const TrialResult& r : out.results) {
    os << r.trial.index;
    for (const auto& [path, v] : r.trial.params) {
      (void)path;
      os << "," << csvField(v);
    }
    if (r.metrics.ok) {
      os << ",1," << formatDouble(r.metrics.meanGBs) << "," << formatDouble(r.metrics.minGBs)
         << "," << formatDouble(r.metrics.maxGBs) << "," << formatDouble(r.metrics.elapsedSec)
         << "," << formatDouble(r.metrics.bytesMoved) << ",";
    } else {
      os << ",0,,,,,," << csvField(JsonValue(r.metrics.error));
    }
    if (anyLatency) {
      if (r.metrics.hasOpLatency) {
        os << "," << formatDouble(r.metrics.opCount) << "," << formatDouble(r.metrics.opP50)
           << "," << formatDouble(r.metrics.opP95) << "," << formatDouble(r.metrics.opP99);
      } else {
        os << ",,,,";
      }
    }
    if (anyTelemetry) {
      if (r.metrics.hasTelemetry) {
        os << "," << formatDouble(r.metrics.rerates) << ","
           << formatDouble(r.metrics.eventsScheduled) << ","
           << formatDouble(r.metrics.eventsCancelled) << ","
           << formatDouble(r.metrics.eventsAdjusted) << ","
           << formatDouble(r.metrics.eventsDispatched) << ","
           << csvField(JsonValue(r.metrics.dominantStage)) << ","
           << formatDouble(r.metrics.dominantSharePct);
      } else {
        os << ",,,,,,,";
      }
    }
    if (anyMonitors) {
      if (r.metrics.hasMonitors) {
        os << "," << formatDouble(r.metrics.monitors) << "," << formatDouble(r.metrics.breaches);
      } else {
        os << ",,";
      }
    }
    if (anySelf) {
      if (r.metrics.hasSelf) {
        os << "," << formatDouble(r.metrics.selfDispatchSec) << ","
           << formatDouble(r.metrics.selfCallbackSec) << ","
           << formatDouble(r.metrics.selfSolveSec) << ","
           << formatDouble(r.metrics.selfTelemetrySec) << ","
           << formatDouble(r.metrics.selfSinkSec);
      } else {
        os << ",,,,,";
      }
    }
    if (anyTransport) {
      if (r.metrics.hasTransport) {
        os << "," << formatDouble(r.metrics.transportOps) << ","
           << formatDouble(r.metrics.transportBytes) << ","
           << formatDouble(r.metrics.transportThrottleSec) << ","
           << formatDouble(r.metrics.transportConnSetups) << ","
           << formatDouble(r.metrics.transportSqWaits) << ","
           << formatDouble(r.metrics.transportDoorbells);
      } else {
        os << ",,,,,,";
      }
    }
    os << "\n";
  }
  return os.str();
}

bool writeCsv(const SweepOutcome& out, const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  f << toCsv(out);
  return static_cast<bool>(f);
}

bool loadBaseline(const std::string& path, std::map<std::string, double>& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    JsonValue j;
    if (!parseJson(line, j)) return false;
    const JsonValue* params = j.find("params");
    const JsonValue* metrics = j.find("metrics");
    if (!params || !metrics) return false;
    if (!metrics->boolOr("ok", false)) continue;
    out[writeJson(*params)] = metrics->numberOr("meanGBs", 0.0);
  }
  return true;
}

std::vector<BaselineDelta> compareToBaseline(const SweepOutcome& out,
                                             const std::map<std::string, double>& baseline) {
  std::vector<BaselineDelta> deltas;
  for (const TrialResult& r : out.results) {
    if (!r.metrics.ok) continue;
    BaselineDelta d;
    d.index = r.trial.index;
    d.key = paramsKey(r.trial);
    d.currentGBs = r.metrics.meanGBs;
    const auto it = baseline.find(d.key);
    if (it != baseline.end()) {
      d.matched = true;
      d.baselineGBs = it->second;
      d.deltaPct =
          d.baselineGBs != 0.0 ? 100.0 * (d.currentGBs - d.baselineGBs) / d.baselineGBs : 0.0;
    }
    deltas.push_back(std::move(d));
  }
  return deltas;
}

}  // namespace hcsim::sweep
