// Ablation: VAST hardware inventory — the "storage system configuration"
// dimension (paper §I): CNode count, DBox count, SCM vs QLC balance, and
// the similarity-reduction ratio. Wombat frontend (RDMA nconnect=16),
// full-node IOR on 4 nodes.

#include <cstdio>

#include "cluster/deployments.hpp"
#include "ior/ior_runner.hpp"
#include "util/table.hpp"

using namespace hcsim;

namespace {

double runGBs(const VastConfig& cfg, AccessPattern access, std::size_t nodes = 4) {
  TestBench bench(Machine::wombat(), nodes);
  auto fs = bench.attachVast(cfg);
  IorRunner runner(bench, *fs);
  IorConfig ior = IorConfig::scalability(access, nodes, 48);
  return units::toGBs(runner.run(ior).bandwidth.mean);
}

}  // namespace

int main() {
  std::printf("== Ablation: VAST hardware configuration (RDMA frontend, 4 nodes) ==\n\n");

  {
    ResultTable t("CNode count (paper: ML saturates at 8 nodes ~ 8 CNodes)");
    t.setHeader({"cnodes", "write GB/s", "seq read GB/s", "rand read GB/s"});
    for (std::size_t c : {2u, 4u, 8u, 16u, 32u}) {
      VastConfig cfg = vastOnWombat();
      cfg.name = "VAST-c" + std::to_string(c);
      cfg.cnodes = c;
      t.addRow({static_cast<double>(c), runGBs(cfg, AccessPattern::SequentialWrite),
                runGBs(cfg, AccessPattern::SequentialRead),
                runGBs(cfg, AccessPattern::RandomRead)});
    }
    std::printf("%s\n", t.toString().c_str());
  }

  {
    ResultTable t("DBox count (fabric + device pool scaling)");
    t.setHeader({"dboxes", "write GB/s", "seq read GB/s"});
    for (std::size_t d : {1u, 2u, 4u, 8u}) {
      VastConfig cfg = vastOnWombat();
      cfg.name = "VAST-d" + std::to_string(d);
      cfg.dboxes = d;
      t.addRow({static_cast<double>(d), runGBs(cfg, AccessPattern::SequentialWrite),
                runGBs(cfg, AccessPattern::SequentialRead)});
    }
    std::printf("%s\n", t.toString().c_str());
  }

  {
    ResultTable t("DNode cache size (read-path benefit)");
    t.setHeader({"cache GiB", "seq read GB/s", "rand read GB/s"});
    for (Bytes gib : {0ull, 64ull, 512ull, 4096ull, 16384ull}) {
      VastConfig cfg = vastOnWombat();
      cfg.name = "VAST-cache" + std::to_string(gib);
      cfg.dnodeCacheBytes = gib * units::GiB;
      t.addRow({static_cast<double>(gib), runGBs(cfg, AccessPattern::SequentialRead),
                runGBs(cfg, AccessPattern::RandomRead)});
    }
    std::printf("%s\n", t.toString().c_str());
  }

  {
    ResultTable t("Similarity reduction ratio (QLC relief vs CNode burden)");
    t.setHeader({"reduction", "write GB/s"});
    for (double r : {0.0, 0.2, 0.35, 0.5, 0.7}) {
      VastConfig cfg = vastOnWombat();
      cfg.name = "VAST-red" + std::to_string(static_cast<int>(r * 100));
      cfg.dataReductionRatio = r;
      t.addRow({r, runGBs(cfg, AccessPattern::SequentialWrite)});
    }
    std::printf("%s\n", t.toString().c_str());
  }
  return 0;
}
