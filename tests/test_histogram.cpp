#include "util/histogram.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "util/random.hpp"

namespace hcsim {
namespace {

TEST(Histogram, ValidatesConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(-1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 2.0, 0), std::invalid_argument);
}

TEST(Histogram, LogSpacedBinEdges) {
  Histogram h(1e-6, 1e-2, 4);  // decades: 1e-6,1e-5,1e-4,1e-3,1e-2
  EXPECT_NEAR(h.binLowerBound(0), 1e-6, 1e-12);
  EXPECT_NEAR(h.binLowerBound(1), 1e-5, 1e-11);
  EXPECT_NEAR(h.binLowerBound(4), 1e-2, 1e-8);
}

TEST(Histogram, CountsLandInRightBins) {
  Histogram h(1e-6, 1e-2, 4);
  h.add(5e-6);   // bin 0
  h.add(5e-5);   // bin 1
  h.add(5e-4);   // bin 2
  h.add(5e-3);   // bin 3
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderAndOverflow) {
  Histogram h(1e-3, 1.0, 3);
  h.add(1e-5);
  h.add(2.0);
  h.add(1.0);  // boundary: >= hi -> overflow
  h.add(1e-3); // boundary: == lo -> bin 0
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, NonFiniteGoesToUnderflow) {
  Histogram h(1e-3, 1.0, 3);
  h.add(std::nan(""));
  h.add(-5.0);
  EXPECT_EQ(h.underflow(), 2u);
}

TEST(Histogram, QuantileEmptyIsZero) {
  Histogram h(1e-3, 1.0, 3);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, QuantileApproximatesTrueQuantiles) {
  Histogram h(1e-5, 1.0, 64);
  Rng rng(99);
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) {
    const double v = rng.lognormal(-6.0, 1.0);  // median e^-6 ~ 2.5e-3
    xs.push_back(v);
    h.add(v);
  }
  std::sort(xs.begin(), xs.end());
  const double trueP50 = xs[xs.size() / 2];
  const double trueP99 = xs[static_cast<std::size_t>(0.99 * xs.size())];
  EXPECT_NEAR(h.quantile(0.5) / trueP50, 1.0, 0.15);
  EXPECT_NEAR(h.quantile(0.99) / trueP99, 1.0, 0.2);
}

TEST(Histogram, QuantileMonotone) {
  Histogram h(1e-4, 1.0, 16);
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) h.add(rng.uniform(1e-4, 0.9));
  double last = 0.0;
  for (double q : {0.0, 0.1, 0.5, 0.9, 0.99, 1.0}) {
    const double v = h.quantile(q);
    EXPECT_GE(v, last);
    last = v;
  }
}

TEST(Histogram, RenderShowsBarsAndEdgeBuckets) {
  Histogram h(1e-3, 1.0, 4);
  h.add(2e-3);
  h.add(2e-3);
  h.add(1e-5);
  h.add(5.0);
  const std::string out = h.render(10);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find("<"), std::string::npos);
  EXPECT_NE(out.find(">="), std::string::npos);
  EXPECT_NE(out.find("2"), std::string::npos);
}

TEST(Histogram, AddVector) {
  Histogram h(1e-3, 1.0, 4);
  h.add(std::vector<double>{2e-3, 3e-3, 0.5});
  EXPECT_EQ(h.total(), 3u);
}

}  // namespace
}  // namespace hcsim
