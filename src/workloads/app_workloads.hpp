#pragma once
// Application workload suite — the real applications §III-B cites as the
// motivation for "diverse workloads", expressed as the I/O patterns the
// paper maps them to:
//
//   scientific simulations (bulk-synchronous sequential writes):
//     * CM1       — atmospheric model, "more than 750 files each of
//                   16 MB in size"
//     * HACC-I/O  — cosmology checkpoint/restart kernel (write a
//                   checkpoint, later read it back)
//   data analytics (embarrassingly parallel sequential reads):
//     * BD-CATS   — clustering "on a shared HDF5 file using MPI-IO"
//                   (N-1 reads!)
//     * KMeans    — iterative passes over point files
//   ML / DL:
//     * linear-regression-style scan (random batch reads)
//     * ResNet-50, Cosmoflow, Cosmic Tagger (DLIO emulation)
//
// Each workload runs one or more phases against a FileSystemModel and
// reports an aggregate bandwidth plus per-phase detail.

#include <string>
#include <vector>

#include "cluster/deployments.hpp"
#include "core/experiment.hpp"  // Site, StorageKind
#include "dlio/dlio_runner.hpp"
#include "ior/ior_runner.hpp"

namespace hcsim {

/// One I/O phase of an application (IOR-expressible).
struct AppPhase {
  std::string label;
  IorConfig ior;
  /// Repeat count (KMeans iterates; HACC restart follows checkpoint).
  std::size_t iterations = 1;
};

struct AppWorkload {
  std::string name;
  std::string domain;  ///< "scientific" | "analytics" | "ML/DL"
  std::string description;
  /// Either a list of IOR phases...
  std::vector<AppPhase> phases;
  /// ...or a DLIO training config (phases empty).
  bool isDlio = false;
  DlioConfig dlio;
};

struct AppPhaseResult {
  std::string label;
  double bandwidthGBs = 0.0;
  Seconds elapsed = 0.0;
  Bytes bytes = 0;
};

struct AppWorkloadResult {
  std::string name;
  std::vector<AppPhaseResult> phases;
  Seconds totalTime = 0.0;
  Bytes totalBytes = 0;
  double aggregateGBs() const {
    return totalTime > 0 ? static_cast<double>(totalBytes) / totalTime / 1e9 : 0.0;
  }
  /// DLIO-only metrics (zero for IOR workloads).
  double appThroughputGBs = 0.0;
  double sysThroughputGBs = 0.0;
};

namespace workloads {

/// CM1: each process writes its share of ~750 x 16 MB history files.
AppWorkload cm1(std::size_t nodes, std::size_t procsPerNode);

/// HACC-I/O: checkpoint write (~1 GiB/proc) then restart read by a
/// different node.
AppWorkload haccIo(std::size_t nodes, std::size_t procsPerNode);

/// BD-CATS: parallel sequential reads of ONE shared HDF5 file (N-1).
AppWorkload bdCats(std::size_t nodes, std::size_t procsPerNode);

/// KMeans: `iterations` full sequential passes over the point files.
AppWorkload kmeans(std::size_t nodes, std::size_t procsPerNode, std::size_t iterations = 8);

/// Linear-regression-style training scan: random batch reads.
AppWorkload linearRegression(std::size_t nodes, std::size_t procsPerNode);

/// DLIO-emulated DL applications.
AppWorkload resnet50(std::size_t nodes);
AppWorkload cosmoflow(std::size_t nodes);
/// Cosmic Tagger: HDF5 samples via h5py, file "striped in memory" —
/// bigger samples, few I/O threads.
AppWorkload cosmicTagger(std::size_t nodes);

/// The full suite at a given scale.
std::vector<AppWorkload> suite(std::size_t nodes, std::size_t procsPerNode);

}  // namespace workloads

/// Execute a workload on an environment (fresh TestBench + model).
AppWorkloadResult runAppWorkload(Site site, StorageKind kind, const AppWorkload& workload);

}  // namespace hcsim
