#include "workload/workload_spec.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <stdexcept>

#include "chaos/chaos_runner.hpp"
#include "chaos/chaos_spec.hpp"
#include "config/serialize.hpp"
#include "trace/trace_import.hpp"
#include "util/stats.hpp"
#include "workload/dlio_source.hpp"
#include "workload/grammar_source.hpp"
#include "workload/io500_source.hpp"
#include "workload/ior_source.hpp"
#include "workload/openloop_source.hpp"
#include "workload/replay_source.hpp"

namespace hcsim::workload {

namespace {

constexpr const char* kWhere = "workload";

/// ReplaySource keeps a reference to the trace it replays; this wrapper
/// owns the imported log so the bundle is self-contained.
class OwningReplaySource : public WorkloadSource {
 public:
  OwningReplaySource(TraceLog log, const ReplayConfig& cfg)
      : log_(std::move(log)), inner_(log_, cfg) {}

  const std::string& name() const override { return inner_.name(); }
  WorkloadPlan load(const WorkloadContext& ctx) override { return inner_.load(ctx); }
  NextStatus next(std::size_t rank, WorkloadOp& out) override { return inner_.next(rank, out); }
  void onComplete(std::size_t rank, const WorkloadOp& op, const IoResult& result) override {
    inner_.onComplete(rank, op, result);
  }
  std::size_t skippedOps() const { return inner_.skippedOps(); }

 private:
  TraceLog log_;
  ReplaySource inner_;
};

std::string prefix(const std::string& key) { return std::string(kWhere) + "." + key + ": "; }

bool positiveInt(const JsonValue& w, const char* key, double fallback, std::size_t& out,
                 std::vector<std::string>& problems) {
  const double v = w.numberOr(key, fallback);
  if (v < 1.0 || v != static_cast<double>(static_cast<std::uint64_t>(v))) {
    problems.push_back(prefix(key) + "must be a positive integer");
    return false;
  }
  out = static_cast<std::size_t>(v);
  return true;
}

bool positiveBytes(const JsonValue& w, const char* key, double fallback, Bytes& out,
                   std::vector<std::string>& problems) {
  const double v = w.numberOr(key, fallback);
  if (v <= 0.0) {
    problems.push_back(prefix(key) + "must be > 0 bytes");
    return false;
  }
  out = static_cast<Bytes>(v);
  return true;
}

SourceBundle makeIor(const JsonValue& w, std::vector<std::string>& problems) {
  IorConfig cfg;
  if (!fromJson(w, cfg)) {
    problems.push_back(std::string(kWhere) + ": the IOR section does not parse");
    return {};
  }
  try {
    cfg.validate();
  } catch (const std::exception& ex) {
    problems.push_back(std::string(kWhere) + ": " + ex.what());
    return {};
  }
  return {std::make_unique<IorSource>(cfg), cfg.nodes};
}

SourceBundle makeDlio(const JsonValue& w, std::vector<std::string>& problems) {
  DlioConfig cfg;
  if (!fromJson(w, cfg)) {
    problems.push_back(std::string(kWhere) + ": the DLIO section does not parse");
    return {};
  }
  try {
    cfg.validate();
  } catch (const std::exception& ex) {
    problems.push_back(std::string(kWhere) + ": " + ex.what());
    return {};
  }
  return {std::make_unique<DlioSource>(cfg), cfg.nodes};
}

SourceBundle makeReplay(const JsonValue& w, std::vector<std::string>& problems) {
  const JsonValue* trace = w.find("trace");
  if (trace == nullptr || !trace->isString()) {
    problems.push_back(prefix("trace") + "required path of a chrome-trace JSON file");
    return {};
  }
  ReplayConfig cfg;
  if (!positiveInt(w, "pidsPerNode", static_cast<double>(cfg.pidsPerNode), cfg.pidsPerNode,
                   problems)) {
    return {};
  }
  if (!positiveBytes(w, "transferSize", static_cast<double>(cfg.transferSize), cfg.transferSize,
                     problems)) {
    return {};
  }
  cfg.replayCompute = w.boolOr("replayCompute", cfg.replayCompute);
  TraceLog log;
  if (!readChromeTrace(*trace->str(), log, nullptr)) {
    problems.push_back(prefix("trace") + "cannot import '" + *trace->str() +
                       "' (unreadable, or no salvageable events)");
    return {};
  }
  std::set<std::uint32_t> pids;
  for (const TraceEvent& e : log.events()) pids.insert(e.pid);
  const std::size_t nodes =
      std::max<std::size_t>(1, (pids.size() + cfg.pidsPerNode - 1) / cfg.pidsPerNode);
  return {std::make_unique<OwningReplaySource>(std::move(log), cfg), nodes};
}

SourceBundle makeIo500(const JsonValue& w, std::vector<std::string>& problems) {
  Io500Config cfg;
  const std::size_t before = problems.size();
  positiveInt(w, "nodes", static_cast<double>(cfg.nodes), cfg.nodes, problems);
  positiveInt(w, "procsPerNode", static_cast<double>(cfg.procsPerNode), cfg.procsPerNode,
              problems);
  cfg.scale = w.numberOr("scale", cfg.scale);
  if (cfg.scale <= 0.0) problems.push_back(prefix("scale") + "must be > 0");
  cfg.seed = static_cast<std::uint64_t>(w.numberOr("seed", static_cast<double>(cfg.seed)));
  positiveBytes(w, "easyTransfer", static_cast<double>(cfg.easyTransfer), cfg.easyTransfer,
                problems);
  positiveBytes(w, "hardTransfer", static_cast<double>(cfg.hardTransfer), cfg.hardTransfer,
                problems);
  std::size_t median = 0;
  if (positiveInt(w, "easyOpsMedian", static_cast<double>(cfg.easyOpsMedian), median, problems)) {
    cfg.easyOpsMedian = median;
  }
  if (positiveInt(w, "hardOpsMedian", static_cast<double>(cfg.hardOpsMedian), median, problems)) {
    cfg.hardOpsMedian = median;
  }
  cfg.volumeSigma = w.numberOr("volumeSigma", cfg.volumeSigma);
  if (cfg.volumeSigma < 0.0) problems.push_back(prefix("volumeSigma") + "must be >= 0");
  if (problems.size() != before) return {};
  return {std::make_unique<Io500Source>(cfg), cfg.nodes};
}

SourceBundle makeGrammar(const JsonValue& w, std::vector<std::string>& problems) {
  GrammarSpec spec;
  if (!parseGrammarSpec(w, kWhere, spec, problems)) return {};
  const std::size_t nodes = spec.nodes;
  return {std::make_unique<GrammarSource>(std::move(spec)), nodes};
}

SourceBundle makeOpenLoop(const JsonValue& w, std::vector<std::string>& problems) {
  OpenLoopConfig cfg;
  const std::size_t before = problems.size();
  positiveInt(w, "clients", static_cast<double>(cfg.clients), cfg.clients, problems);
  positiveInt(w, "clientsPerNode", static_cast<double>(cfg.clientsPerNode), cfg.clientsPerNode,
              problems);
  cfg.ratePerClientHz = w.numberOr("ratePerClientHz", cfg.ratePerClientHz);
  if (cfg.ratePerClientHz <= 0.0) problems.push_back(prefix("ratePerClientHz") + "must be > 0");
  cfg.horizonSec = w.numberOr("horizonSec", cfg.horizonSec);
  if (cfg.horizonSec <= 0.0) problems.push_back(prefix("horizonSec") + "must be > 0 seconds");
  positiveInt(w, "objects", static_cast<double>(cfg.objects), cfg.objects, problems);
  cfg.zipfTheta = w.numberOr("zipfTheta", cfg.zipfTheta);
  if (cfg.zipfTheta < 0.0) problems.push_back(prefix("zipfTheta") + "must be >= 0");
  positiveBytes(w, "objectBytes", static_cast<double>(cfg.objectBytes), cfg.objectBytes,
                problems);
  positiveBytes(w, "requestBytes", static_cast<double>(cfg.requestBytes), cfg.requestBytes,
                problems);
  if (cfg.requestBytes > cfg.objectBytes) {
    problems.push_back(prefix("requestBytes") + "must be <= objectBytes");
  }
  cfg.readFraction = w.numberOr("readFraction", cfg.readFraction);
  if (cfg.readFraction < 0.0 || cfg.readFraction > 1.0) {
    problems.push_back(prefix("readFraction") + "must be in [0, 1]");
  }
  cfg.seed = static_cast<std::uint64_t>(w.numberOr("seed", static_cast<double>(cfg.seed)));
  cfg.sampleIntervalSec = w.numberOr("sampleIntervalSec", cfg.sampleIntervalSec);
  if (cfg.sampleIntervalSec < 0.0) {
    problems.push_back(prefix("sampleIntervalSec") + "must be >= 0 (0 = horizon/20)");
  }
  positiveInt(w, "clientsPerRank", static_cast<double>(cfg.clientsPerRank), cfg.clientsPerRank,
              problems);
  cfg.sharedStream = w.boolOr("sharedStream", cfg.sharedStream);
  cfg.demandSigma = w.numberOr("demandSigma", cfg.demandSigma);
  if (cfg.demandSigma < 0.0) problems.push_back(prefix("demandSigma") + "must be >= 0");
  if (problems.size() != before) return {};
  return {std::make_unique<OpenLoopSource>(cfg), cfg.nodes()};
}

using Factory = SourceBundle (*)(const JsonValue&, std::vector<std::string>&);

const std::map<std::string, Factory>& registry() {
  static const std::map<std::string, Factory> reg = {
      {"ior", makeIor},         {"dlio", makeDlio},     {"replay", makeReplay},
      {"io500", makeIo500},     {"grammar", makeGrammar}, {"openloop", makeOpenLoop},
  };
  return reg;
}

}  // namespace

std::vector<std::string> knownGenerators() {
  std::vector<std::string> names;
  for (const auto& [name, f] : registry()) names.push_back(name);
  return names;
}

void parseWorkloadSpec(const JsonValue& doc, WorkloadRunSpec& out,
                       std::vector<std::string>& problems) {
  out = WorkloadRunSpec{};
  if (!doc.isObject()) {
    problems.push_back("the spec must be a JSON object");
    return;
  }
  out.name = doc.stringOr("name", "workload");

  const std::string site = doc.stringOr("site", "lassen");
  if (site == "lassen") out.site = Site::Lassen;
  else if (site == "ruby") out.site = Site::Ruby;
  else if (site == "quartz") out.site = Site::Quartz;
  else if (site == "wombat") out.site = Site::Wombat;
  else problems.push_back("site: must be lassen|ruby|quartz|wombat (got '" + site + "')");

  const std::string storage = doc.stringOr("storage", "vast");
  if (storage == "vast") out.storage = StorageKind::Vast;
  else if (storage == "gpfs") out.storage = StorageKind::Gpfs;
  else if (storage == "lustre") out.storage = StorageKind::Lustre;
  else if (storage == "nvme") out.storage = StorageKind::NvmeLocal;
  else if (storage == "daos") out.storage = StorageKind::Daos;
  else problems.push_back("storage: must be vast|gpfs|lustre|nvme|daos (got '" + storage + "')");

  if (const JsonValue* sc = doc.find("storageConfig")) {
    if (!sc->isObject() && !sc->isNull()) {
      problems.push_back("storageConfig: must be an object of preset overrides");
    } else {
      out.storageConfig = *sc;
    }
  }

  if (const JsonValue* tr = doc.find("transport")) {
    if (!tr->isObject() && !tr->isNull()) {
      problems.push_back("transport: must be an object of endpoint-profile overrides");
    } else {
      out.transport = *tr;
    }
  }

  const JsonValue* w = doc.find("workload");
  if (w == nullptr || !w->isObject()) {
    problems.push_back("workload: required object with a 'generator' key");
  } else {
    out.workload = *w;
    out.generator = w->stringOr("generator", "");
    if (out.generator.empty()) {
      problems.push_back("workload.generator: required (one of: " +
                         [] {
                           std::string s;
                           for (const std::string& n : knownGenerators()) {
                             if (!s.empty()) s += ", ";
                             s += n;
                           }
                           return s;
                         }() +
                         ")");
    } else if (registry().find(out.generator) == registry().end()) {
      std::string s;
      for (const std::string& n : knownGenerators()) {
        if (!s.empty()) s += ", ";
        s += n;
      }
      problems.push_back("workload.generator: unknown generator '" + out.generator +
                         "' (known: " + s + ")");
    }
  }

  if (const JsonValue* r = doc.find("retry")) {
    if (r->isBool()) {
      out.retryEnabled = *r->boolean();
    } else if (r->isObject()) {
      out.retryEnabled = true;
      out.retry.timeout = r->numberOr("timeoutSec", out.retry.timeout);
      out.retry.maxRetries = static_cast<std::size_t>(
          r->numberOr("maxRetries", static_cast<double>(out.retry.maxRetries)));
      out.retry.backoffBase = r->numberOr("backoffBaseSec", out.retry.backoffBase);
      out.retry.backoffMultiplier = r->numberOr("backoffMultiplier", out.retry.backoffMultiplier);
    } else {
      problems.push_back("retry: must be a boolean or an object");
    }
  }

  if (const JsonValue* c = doc.find("chaos")) out.chaos = *c;

  if (const JsonValue* si = doc.find("sampleIntervalSec")) {
    if (!si->isNumber() || *si->number() <= 0.0) {
      problems.push_back("sampleIntervalSec: must be > 0 seconds");
    } else {
      out.sampleIntervalSec = *si->number();
    }
  }

  {
    std::vector<std::string> monitorProblems;
    probe::parseMonitors(doc, out.monitors, monitorProblems);
    for (std::string& p : monitorProblems) problems.push_back(std::move(p));
    bool needsTimeline = false;
    bool needsRecovery = false;
    for (const probe::MonitorSpec& m : out.monitors) {
      if (m.metric != probe::MonitorMetric::P99OpLatencySec) needsTimeline = true;
      if (m.metric == probe::MonitorMetric::RecoverySec) needsRecovery = true;
    }
    if (needsRecovery && out.chaos.isNull()) {
      problems.push_back(
          "monitors: recoverySec requires a 'chaos' section with a restore event");
    }
    // Closed-loop generators have no goodput timeline of their own, so
    // slice-based monitors need the explicit interval knob.
    if (needsTimeline && out.generator != "openloop" && out.sampleIntervalSec <= 0.0) {
      problems.push_back(
          "monitors: goodputGBs/stallSec/recoverySec watch the goodput timeline; set a "
          "top-level 'sampleIntervalSec' (> 0) to sample closed-loop generators");
    }
  }
}

SourceBundle makeSource(const WorkloadRunSpec& spec, std::vector<std::string>& problems) {
  const auto it = registry().find(spec.generator);
  if (it == registry().end()) {
    std::string s;
    for (const std::string& n : knownGenerators()) {
      if (!s.empty()) s += ", ";
      s += n;
    }
    problems.push_back("workload.generator: unknown generator '" + spec.generator +
                       "' (known: " + s + ")");
    return {};
  }
  return it->second(spec.workload, problems);
}

ChaosLandmarks injectWorkloadChaos(const WorkloadRunSpec& spec, Environment& env) {
  ChaosLandmarks lm;
  if (spec.chaos.isNull()) return lm;
  chaos::ChaosSpec cs;
  std::string err;
  if (!chaos::parseChaosSpec(spec.chaos, cs, err)) {
    throw std::invalid_argument("workload: 'chaos' section: " + err);
  }
  if (cs.events.empty()) return lm;
  // The workload owns the clock — no horizon to bound the schedule.
  cs.horizon = std::numeric_limits<double>::infinity();
  cs.interval = 1.0;
  const std::vector<std::string> problems =
      chaos::validateSchedule(cs, *env.fs, env.bench->topo());
  if (!problems.empty()) {
    std::string msg = "workload: 'chaos' section:";
    for (const std::string& p : problems) msg += " " + p + ";";
    throw std::invalid_argument(msg);
  }
  chaos::scheduleFaults(env, cs.events);
  lm.any = true;
  lm.firstFaultAt = cs.events.front().at;
  lm.degradedTolerance = cs.degradedTolerance;
  for (const chaos::ChaosEvent& ev : cs.events) {
    lm.firstFaultAt = std::min(lm.firstFaultAt, ev.at);
    if (ev.fault.action == FaultAction::Restore) {
      lm.lastRestoreAt = std::max(lm.lastRestoreAt, ev.at);
    }
  }
  return lm;
}

WorkloadOutcome runWorkload(Environment& env, const WorkloadRunSpec& spec,
                            WorkloadSource& source, TraceLog* trace,
                            const ChaosLandmarks* landmarks) {
  WorkloadRunner runner(*env.bench, *env.fs);
  runner.setTraceLog(trace);
  if (spec.retryEnabled) runner.enableRetry(spec.retry);
  if (spec.sampleIntervalSec > 0.0) runner.setSampleInterval(spec.sampleIntervalSec);
  if (!spec.monitors.empty()) {
    runner.setMonitors(spec.monitors);
    if (landmarks != nullptr && landmarks->any) {
      runner.setChaosLandmarks(landmarks->firstFaultAt, landmarks->lastRestoreAt,
                               landmarks->degradedTolerance);
    }
  }
  return runner.run(source);
}

std::string toJsonl(const WorkloadOutcome& out) {
  std::string all;
  JsonObject s;
  s["type"] = "summary";
  s["generator"] = out.generator;
  s["elapsedSec"] = out.elapsed;
  s["simElapsedSec"] = out.simElapsed;
  s["bytes"] = static_cast<double>(out.bytesMoved);
  s["goodputGBs"] = out.goodputGBs();
  s["opsIssued"] = static_cast<double>(out.opsIssued);
  s["opsCompleted"] = static_cast<double>(out.opsCompleted);
  s["opsFailed"] = static_cast<double>(out.opsFailed);
  s["metaOps"] = static_cast<double>(out.metaOps);
  s["computeOps"] = static_cast<double>(out.computeOps);
  s["barriers"] = static_cast<double>(out.barriers);
  s["retries"] = static_cast<double>(out.retries);
  s["lateCompletions"] = static_cast<double>(out.lateCompletions);
  if (out.clientsPerRank > 1) {
    // Aggregation shape, only when flow classes are in play — legacy
    // runs keep their summary line byte-identical.
    s["classes"] = static_cast<double>(out.ranks);
    s["clientsPerRank"] = static_cast<double>(out.clientsPerRank);
    s["clientsTotal"] = static_cast<double>(out.clientsTotal());
  }
  if (out.opLatencies.empty()) {
    s["opLatency"] = JsonValue();  // null, not zeros: nothing was collected
  } else {
    const Summary lat = summarize(out.opLatencies);
    JsonObject l;
    l["count"] = static_cast<double>(lat.count);
    l["p50"] = lat.p50;
    l["p95"] = lat.p95;
    l["p99"] = lat.p99;
    s["opLatency"] = JsonValue(std::move(l));
  }
  all += writeJson(JsonValue(std::move(s))) + "\n";
  for (const WorkloadSample& w : out.timeline) {
    JsonObject o;
    o["type"] = "sample";
    o["t0"] = w.start;
    o["t1"] = w.end;
    o["gbs"] = w.gbs;
    all += writeJson(JsonValue(std::move(o))) + "\n";
  }
  return all;
}

std::string toCsv(const WorkloadOutcome& out) {
  std::string csv = "t0,t1,gbs\n";
  for (const WorkloadSample& w : out.timeline) {
    csv += writeJson(JsonValue(w.start)) + "," + writeJson(JsonValue(w.end)) + "," +
           writeJson(JsonValue(w.gbs)) + "\n";
  }
  return csv;
}

}  // namespace hcsim::workload
