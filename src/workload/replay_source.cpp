#include "workload/replay_source.hpp"

#include <algorithm>
#include <map>

namespace hcsim::workload {

WorkloadPlan ReplaySource::load(const WorkloadContext& ctx) {
  (void)ctx;
  // Group events by pid (ascending), ordered by start time within a pid.
  std::map<std::uint32_t, std::vector<const TraceEvent*>> byPid;
  for (const TraceEvent& e : input_->events()) byPid[e.pid].push_back(&e);

  ranks_.clear();
  ranks_.reserve(byPid.size());
  for (auto& [pid, evs] : byPid) {
    std::stable_sort(evs.begin(), evs.end(),
                     [](const TraceEvent* a, const TraceEvent* b) { return a->start < b->start; });
    RankState st;
    st.pid = pid;
    st.client = ClientId{static_cast<std::uint32_t>(pid / cfg_.pidsPerNode),
                         static_cast<std::uint32_t>(pid % cfg_.pidsPerNode)};
    st.events = std::move(evs);
    ranks_.push_back(std::move(st));
  }

  WorkloadPlan plan;
  plan.ranks = ranks_.size();
  plan.phase.pattern = AccessPattern::RandomRead;
  plan.phase.requestSize = cfg_.transferSize;
  plan.phase.nodes = static_cast<std::uint32_t>(
      (ranks_.size() + cfg_.pidsPerNode - 1) / std::max<std::size_t>(1, cfg_.pidsPerNode));
  if (plan.phase.nodes == 0) plan.phase.nodes = 1;
  plan.phase.procsPerNode = static_cast<std::uint32_t>(cfg_.pidsPerNode);
  plan.phase.workingSetBytes = input_->totalBytes(TraceEventKind::Read);
  return plan;
}

NextStatus ReplaySource::next(std::size_t rank, WorkloadOp& out) {
  RankState& st = ranks_[rank];
  if (st.pending) return NextStatus::Wait;
  while (st.next < st.events.size()) {
    const TraceEvent& ev = *st.events[st.next++];
    if (ev.kind == TraceEventKind::Compute) {
      if (ev.duration < 0) {
        ++skipped_;  // malformed: a span cannot run backwards
        continue;
      }
      if (!cfg_.replayCompute || ev.duration == 0) continue;
      out.kind = OpKind::Compute;
      out.compute = ev.duration;
      out.traced = true;
      out.label = ev.name;
      out.tracePid = st.pid;
      out.traceTid = ev.tid;
      st.pending = true;
      return NextStatus::Op;
    }
    if (ev.kind == TraceEventKind::Read || ev.kind == TraceEventKind::Write) {
      if (ev.bytes == 0) {
        ++skipped_;  // malformed: an I/O record that moved nothing
        continue;
      }
      out.kind = OpKind::Io;
      out.io.client = st.client;
      out.io.fileId = (static_cast<std::uint64_t>(st.pid) << 24) + ++st.fileCounter;
      out.io.offset = 0;
      out.io.bytes = ev.bytes;
      out.io.pattern = ev.kind == TraceEventKind::Read ? AccessPattern::RandomRead
                                                       : AccessPattern::SequentialWrite;
      out.io.ops = std::max<std::uint64_t>(1, ev.bytes / cfg_.transferSize);
      out.traced = true;
      out.label = ev.name;
      out.tracePid = st.pid;
      out.traceTid = ev.tid;
      st.pending = true;
      return NextStatus::Op;
    }
    // Other event kinds are not replayable by design; skip silently.
  }
  return NextStatus::End;
}

void ReplaySource::onComplete(std::size_t rank, const WorkloadOp& op, const IoResult& result) {
  (void)op;
  (void)result;
  ranks_[rank].pending = false;
}

}  // namespace hcsim::workload
