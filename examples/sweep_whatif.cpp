// What-if sweep over storage *configuration* knobs, not just workload
// geometry: would upgrading Lassen's single TCP gateway (latency) or
// raising the per-client NFS session cap change IOR read bandwidth?
// The axes address VastConfig fields through the same JSON paths that
// `hcsim dump-config` emits, merged leniently onto the site preset.

#include <cstdio>

#include "sweep/result_sink.hpp"
#include "sweep/sweep_runner.hpp"
#include "util/units.hpp"

using namespace hcsim;

int main() {
  sweep::SweepSpec spec;
  spec.name = "lassen-vast-whatif";
  spec.experiment = "ior";

  JsonObject ior;
  ior["access"] = "seq-read";
  ior["nodes"] = 4;
  ior["procsPerNode"] = 8;
  ior["segments"] = 256;
  ior["repetitions"] = 1;
  JsonObject base;
  base["site"] = "lassen";
  base["storage"] = "vast";
  base["ior"] = JsonValue(std::move(ior));
  spec.base = JsonValue(std::move(base));

  // Axis 1: gateway forwarding latency — as deployed (250us) vs a
  // hypothetical low-latency gateway. Axis 2: per-client TCP session
  // cap — as deployed vs nconnect-style doubling/quadrupling.
  spec.axes.push_back({"storageConfig.gateway.latency",
                       {JsonValue(units::usec(250)), JsonValue(units::usec(30))}});
  spec.axes.push_back({"storageConfig.tcpSessionCap",
                       {JsonValue(units::gbs(1.15)), JsonValue(units::gbs(2.3)),
                        JsonValue(units::gbs(4.6))}});

  const std::size_t jobs = sweep::defaultJobs();
  std::printf("what-if '%s': %zu trials on %zu jobs\n", spec.name.c_str(), spec.trialCount(),
              jobs);
  const sweep::SweepOutcome out = sweep::runSweep(spec, jobs);

  for (const auto& r : out.results) {
    std::printf("%s\n", sweep::toJsonlLine(r).c_str());
  }
  if (out.bandwidthGBs.count() > 0) {
    std::printf("mean across the grid: %.2f GB/s (min %.2f, max %.2f)\n",
                out.bandwidthGBs.mean(), out.bandwidthGBs.min(), out.bandwidthGBs.max());
  }
  return out.failures == 0 ? 0 : 1;
}
