#pragma once
// Tiny command-line parser for the hcsim CLI: positionals + --key value
// options + --flags. Deliberately simple and fully testable.

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace hcsim {

class ArgParser {
 public:
  /// Parse argv-style input (excluding the program name). Tokens
  /// starting with "--" are options; "--key value" when the next token
  /// is not an option, otherwise a boolean flag. Known boolean flags
  /// (--fsync, --per-op, --shared-file, --unique-dir, --help) never
  /// consume a value. Everything else is a positional. "--key=value" is
  /// also accepted.
  explicit ArgParser(const std::vector<std::string>& args);
  ArgParser(int argc, const char* const* argv);  ///< skips argv[0]

  const std::vector<std::string>& positionals() const { return positionals_; }
  std::string positionalOr(std::size_t index, const std::string& fallback) const;

  bool has(const std::string& key) const { return options_.count(key) > 0; }
  std::optional<std::string> get(const std::string& key) const;
  std::string getOr(const std::string& key, const std::string& fallback) const;
  double numberOr(const std::string& key, double fallback) const;
  std::size_t sizeOr(const std::string& key, std::size_t fallback) const;

  /// Options that were never queried (typo detection).
  std::vector<std::string> unknownOptions(const std::vector<std::string>& known) const;

 private:
  void parse(const std::vector<std::string>& args);

  std::vector<std::string> positionals_;
  std::map<std::string, std::string> options_;  // flag -> "" for bare flags
};

}  // namespace hcsim
