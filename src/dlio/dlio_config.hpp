#pragma once
// DlioConfig — reimplementation of the DLIO-benchmark semantics the paper
// uses (§IV-C2, §VI): a data-parallel training loop whose input pipeline
// (I/O worker threads + prefetch queue) runs concurrently with per-batch
// GPU compute. The two workloads are ResNet-50 (PyTorch flavour; 150 KB
// JPEG samples, weak scaling, 1 epoch, 8 I/O threads) and Cosmoflow
// (TensorFlow flavour; TFRecord samples read in constant 256 KB
// transfers, strong scaling, 4 epochs, 4 I/O threads, 8 compute threads).

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/units.hpp"

namespace hcsim {

enum class ScalingMode {
  Weak,    ///< per-rank dataset constant; total grows with ranks
  Strong,  ///< total dataset constant; split across ranks
};

const char* toString(ScalingMode m);

struct DlioWorkload {
  std::string name;
  /// Samples at the *baseline* scale: Weak -> per rank; Strong -> total.
  std::size_t samples = 1024;
  Bytes sampleSize = 150 * units::KB;
  /// I/O request granularity; Cosmoflow keeps 256 KB "throughout the
  /// training process", ResNet reads each JPEG in one request.
  Bytes transferSize = 150 * units::KB;
  std::size_t batchSize = 1;  ///< paper: "one batch-sized"
  std::size_t epochs = 1;
  std::size_t ioThreads = 8;       ///< input-pipeline threads per rank
  std::size_t computeThreads = 8;  ///< compute threads per rank (recorded)
  std::size_t prefetchDepth = 4;   ///< batches buffered ahead of the trainer
  Seconds computeTimePerBatch = units::msec(40);
  ScalingMode scaling = ScalingMode::Weak;
  /// Checkpointing (DLIO's checkpoint mode): every `checkpointEvery`
  /// trained batches, rank 0 of each node writes `checkpointBytes` of
  /// model state synchronously (training stalls). 0 disables.
  std::size_t checkpointEvery = 0;
  Bytes checkpointBytes = 0;

  std::uint64_t transfersPerSample() const {
    return (sampleSize + transferSize - 1) / transferSize;
  }

  /// ResNet-50 as the paper runs it: 1024 JPEG samples of 150 KB, batch
  /// size one, one epoch, weak scaling, PyTorch loader with 8 I/O threads.
  static DlioWorkload resnet50();

  /// Cosmoflow: 1024 TFRecord samples, constant 256 KB transfers, four
  /// epochs, strong scaling, 4 I/O threads + 8 compute threads.
  static DlioWorkload cosmoflow();

  /// UNet3D (the third standard DLIO workload): few very large samples
  /// (~140 MB .npz volumes), periodic multi-GB checkpoints — the
  /// checkpoint-dominated contrast to the read-dominated pair above.
  static DlioWorkload unet3d();
};

struct DlioConfig {
  DlioWorkload workload;
  std::size_t nodes = 1;
  /// Ranks per node; Lassen runs one rank per GPU (4).
  std::size_t procsPerNode = 4;
  std::uint64_t seed = 0xd110ull;
  /// Relative jitter on per-batch compute time.
  double computeJitterFrac = 0.05;

  std::size_t totalRanks() const { return nodes * procsPerNode; }

  /// Samples one rank processes per epoch under the workload's scaling.
  std::size_t samplesPerRank() const;
  /// Total dataset size on storage (all ranks, one copy).
  Bytes datasetBytes() const;

  void validate() const;
};

}  // namespace hcsim
