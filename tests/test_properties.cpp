// Cross-cutting property tests: invariants that must hold over parameter
// sweeps, regardless of calibration values.

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "dlio/dlio_runner.hpp"
#include "ior/ior_runner.hpp"
#include "oracle/relation.hpp"
#include "util/random.hpp"

namespace hcsim {
namespace {

// ---------- Flow-network conservation over random schedules ----------

class FlowConservationTest : public ::testing::TestWithParam<int> {};

TEST_P(FlowConservationTest, BytesCarriedEqualsBytesInjected) {
  const int seed = GetParam();
  Simulator sim;
  FlowNetwork net(sim);
  Rng rng(static_cast<std::uint64_t>(seed) * 2654435761u + 3);

  std::vector<LinkId> links;
  for (int i = 0; i < 4; ++i) {
    links.push_back(net.addLink("l" + std::to_string(i), rng.uniform(50, 500)));
  }
  std::vector<double> expected(links.size(), 0.0);
  double completedBytes = 0.0;
  std::size_t completions = 0;
  const int flows = 20;
  for (int f = 0; f < flows; ++f) {
    Route route;
    for (std::size_t i = 0; i < links.size(); ++i) {
      if (rng.uniform() < 0.5) route.push_back(links[i]);
    }
    if (route.empty()) route.push_back(links[0]);
    const Bytes bytes = 1000 + rng.uniformInt(50000);
    for (LinkId l : route) expected[l.value] += static_cast<double>(bytes);
    FlowSpec spec{bytes, route};
    spec.startupLatency = rng.uniform(0.0, 5.0);
    net.startFlow(spec, [&](const FlowCompletion& c) {
      completedBytes += static_cast<double>(c.bytes);
      ++completions;
    });
  }
  sim.run();
  EXPECT_EQ(completions, static_cast<std::size_t>(flows));
  for (std::size_t i = 0; i < links.size(); ++i) {
    EXPECT_NEAR(net.link(links[i]).bytesCarried, expected[i],
                expected[i] * 1e-6 + static_cast<double>(flows))
        << "link " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowConservationTest, ::testing::Range(0, 8));

// ---------- DLIO breakdown identities ----------

struct DlioCase {
  StorageKind kind;
  bool cosmoflowLike;
};

class DlioInvariantTest : public ::testing::TestWithParam<int> {};

TEST_P(DlioInvariantTest, OverlapPartitionsTotalIo) {
  const int param = GetParam();
  const StorageKind kind = param % 2 ? StorageKind::Gpfs : StorageKind::Vast;
  DlioConfig cfg;
  cfg.workload = param / 2 ? DlioWorkload::cosmoflow() : DlioWorkload::resnet50();
  cfg.workload.samples = 24;
  cfg.workload.scaling = ScalingMode::Weak;
  cfg.nodes = 1;
  cfg.procsPerNode = 2;
  const DlioResult r = runDlio(Site::Lassen, kind, cfg);

  // Identity: non-overlapping + overlapping == total I/O time.
  EXPECT_NEAR(r.breakdown.nonOverlappingIo + r.breakdown.overlappingIo, r.breakdown.totalIo,
              1e-9 * std::max(1.0, r.breakdown.totalIo));
  // Bytes flow through exactly once.
  EXPECT_EQ(r.breakdown.ioBytes, r.bytesRead + r.bytesCheckpointed);
  // Runtime covers at least the per-rank compute chain.
  EXPECT_GE(r.runtime + 1e-9, r.breakdown.totalCompute / cfg.totalRanks());
  // Every batch trained exactly once.
  EXPECT_EQ(r.batchesTrained,
            cfg.samplesPerRank() * cfg.workload.epochs * cfg.totalRanks());
}

INSTANTIATE_TEST_SUITE_P(Cases, DlioInvariantTest, ::testing::Range(0, 4));

// ---------- IOR scaling monotonicity ----------

struct SweepCase {
  Site site;
  StorageKind kind;
  AccessPattern pattern;
};

class IorMonotonicityTest : public ::testing::TestWithParam<int> {};

TEST_P(IorMonotonicityTest, AggregateBandwidthNonDecreasingInNodes) {
  static const SweepCase cases[] = {
      {Site::Lassen, StorageKind::Vast, AccessPattern::SequentialWrite},
      {Site::Lassen, StorageKind::Gpfs, AccessPattern::SequentialRead},
      {Site::Lassen, StorageKind::Gpfs, AccessPattern::RandomRead},
      {Site::Wombat, StorageKind::Vast, AccessPattern::RandomRead},
      {Site::Wombat, StorageKind::NvmeLocal, AccessPattern::SequentialWrite},
  };
  const SweepCase& c = cases[static_cast<std::size_t>(GetParam())];
  const auto pts = runIorNodeSweep(c.site, c.kind, c.pattern, {1, 2, 4, 8}, 8);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    // Near-monotone: growing working sets may shave cache hit ratios
    // (GPFS random reads), but aggregate bandwidth must never collapse
    // when nodes are added.
    EXPECT_GE(pts[i].meanGBs, pts[i - 1].meanGBs * 0.85)
        << toString(c.kind) << "@" << toString(c.site) << " x=" << pts[i].x;
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, IorMonotonicityTest, ::testing::Range(0, 5));

// ---------- IOR bandwidth sanity across transfer sizes ----------

class IorTransferSizeTest : public ::testing::TestWithParam<Bytes> {};

TEST_P(IorTransferSizeTest, SmallerTransfersNeverFaster) {
  const Bytes xfer = GetParam();
  Environment env = makeEnvironment(Site::Wombat, StorageKind::Vast, 2);
  IorRunner runner(*env.bench, *env.fs);
  IorConfig small = IorConfig::scalability(AccessPattern::SequentialWrite, 2, 8);
  small.transferSize = xfer;
  small.blockSize = units::MiB;
  small.segments = 64;
  IorConfig big = small;
  big.transferSize = units::MiB;
  const double smallBw = runner.run(small).bandwidth.mean;
  const double bigBw = runner.run(big).bandwidth.mean;
  EXPECT_LE(smallBw, bigBw * 1.01) << "xfer=" << xfer;
}

INSTANTIATE_TEST_SUITE_P(Sizes, IorTransferSizeTest,
                         ::testing::Values(4 * units::KiB, 64 * units::KiB, 256 * units::KiB,
                                           units::MiB / 2));

// ---------- VAST configuration space stays physical ----------

class VastConfigSpaceTest : public ::testing::TestWithParam<int> {};

TEST_P(VastConfigSpaceTest, AnyValidConfigYieldsPositiveBoundedBandwidth) {
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) + 77);
  VastConfig cfg = VastConfig::wombatInstance();
  cfg.name = "sweep" + std::to_string(seed);
  cfg.cnodes = 1 + rng.uniformInt(32);
  cfg.dboxes = 1 + rng.uniformInt(8);
  cfg.nconnect = 1 + rng.uniformInt(32);
  cfg.dataReductionRatio = rng.uniform(0.0, 0.9);
  cfg.dnodeCacheBytes = rng.uniformInt(8) * units::TB;
  cfg.validate();

  TestBench bench(Machine::wombat(), 2);
  auto fs = bench.attachVast(cfg);
  IorRunner runner(bench, *fs);
  IorConfig ior = IorConfig::scalability(AccessPattern::SequentialRead, 2, 8);
  ior.segments = 64;
  const double bw = runner.run(ior).bandwidth.mean;
  EXPECT_GT(bw, 0.0);
  // Physical ceiling: cannot beat both NICs' injection bandwidth.
  EXPECT_LE(bw, 2.0 * Machine::wombat().nodeInjection * 1.001);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VastConfigSpaceTest, ::testing::Range(0, 10));

// ---------- per-filesystem metamorphic relations ----------
//
// Each paper claim below is stated once, as a relation in the oracle's
// built-in catalog, and dogfooded here over a handful of seeded
// perturbed configs. `hcsim oracle relations` runs the same catalog at
// 50+ cases; these keep the claims wired into plain ctest.

class MetamorphicCatalogTest : public ::testing::TestWithParam<const char*> {};

TEST_P(MetamorphicCatalogTest, HoldsOverSeededPerturbedConfigs) {
  const auto* rel = oracle::RelationRegistry::builtin().find(GetParam());
  ASSERT_NE(rel, nullptr) << GetParam();
  oracle::SuiteOptions options;
  options.casesPerRelation = 8;
  options.jobs = 2;
  const oracle::RelationReport rep = oracle::runRelation(*rel, options);
  EXPECT_TRUE(rep.pass()) << oracle::toMarkdown({rep});
}

INSTANTIATE_TEST_SUITE_P(
    PaperClaims, MetamorphicCatalogTest,
    ::testing::Values(
        // Fig 2b: VAST's SCM/QLC path keeps random reads within a bounded
        // gap of sequential reads.
        "vast.random-read-tracks-sequential",
        // §V: a bigger GPFS pagepool keeps a bigger resident core, so the
        // random-read hit ratio (and bandwidth) is monotone in it.
        "gpfs.random-read-monotone-in-pagepool",
        // Fig 3b/3c: Lustre bandwidth is monotone in stripe count.
        "lustre.read-monotone-in-stripe-count",
        // Fig 2b: NVMe aggregate bandwidth is monotone in queue depth and
        // saturates at (never beats) the per-node drive pool.
        "nvme.read-monotone-in-queue-depth", "nvme.reads-saturate-at-device-pool"));

}  // namespace
}  // namespace hcsim
