// Regression tests pinning the paper's headline results. These run the
// actual experiments (smaller repetitions) and assert the SHAPES the
// paper reports: who wins, by what rough factor, where saturation falls.
// If a model change breaks a finding, these fail.

#include <gtest/gtest.h>

#include "core/calibration.hpp"
#include "core/experiment.hpp"
#include "core/takeaways.hpp"

namespace hcsim {
namespace {

TEST(Regression, RdmaVastBeatsTcpVastByRoughly8x) {
  const RdmaVsTcp r = measureRdmaVsTcp();
  EXPECT_GT(r.writeFactor(), 4.0);
  EXPECT_LT(r.writeFactor(), 16.0);
  EXPECT_GT(r.readFactor(), 4.0);
  EXPECT_NEAR(r.tcpWriteGBsPerNode, calibration::kTcpPerNodeGBs, 0.5);
  EXPECT_NEAR(r.rdmaWriteGBsPerNode, calibration::kRdmaPerNodeGBs, 3.0);
}

TEST(Regression, VastOnLassenStagnatesAfter32NodesWhileGpfsScales) {
  // Fig 2a: "the abrupt stagnation of VAST after 32 nodes ... while GPFS
  // increases"; VAST grows ~1 GB/s per node until the gateway network
  // saturates, then flatlines at "the maximum available bandwidth on the
  // network".
  const auto vast = runIorNodeSweep(Site::Lassen, StorageKind::Vast,
                                    AccessPattern::RandomRead, {4, 32, 64, 128}, 44);
  const auto gpfs = runIorNodeSweep(Site::Lassen, StorageKind::Gpfs,
                                    AccessPattern::SequentialWrite, {4, 64}, 44);
  EXPECT_GT(vast[1].meanGBs, 3.0 * vast[0].meanGBs);          // grows to 32
  EXPECT_NEAR(vast[2].meanGBs / vast[1].meanGBs, 1.0, 0.15);  // flat after
  EXPECT_NEAR(vast[3].meanGBs / vast[1].meanGBs, 1.0, 0.15);
  // Plateau == the gateway's physical network budget (2x100 GbE).
  EXPECT_NEAR(vast[3].meanGBs, units::toGBs(vastOnLassen().gateway.totalBandwidth()), 7.0);
  EXPECT_GT(gpfs[1].meanGBs / gpfs[0].meanGBs, 8.0);  // ~linear
}

TEST(Regression, GpfsSequentialReadSaturatesNear32Nodes) {
  const auto pts = runIorNodeSweep(Site::Lassen, StorageKind::Gpfs,
                                   AccessPattern::SequentialRead, {16, 32, 64, 128}, 44);
  // Growing up to 32, flat beyond.
  EXPECT_GT(pts[1].meanGBs, pts[0].meanGBs * 1.5);
  EXPECT_NEAR(pts[2].meanGBs / pts[1].meanGBs, 1.0, 0.15);
  EXPECT_NEAR(pts[3].meanGBs / pts[1].meanGBs, 1.0, 0.15);
}

TEST(Regression, GpfsRandomReadsCollapseVsSequential) {
  // Takeaway: ~14.5 GB/s sequential vs ~1.4 GB/s random per node (90%).
  const SeqVsRandom sr = measureSeqVsRandom();
  EXPECT_GT(sr.gpfsDropFraction(), 0.75);
  EXPECT_NEAR(sr.gpfsSeqGBs, calibration::kGpfsSeqReadPerNodeGBs, 3.0);
  EXPECT_NEAR(sr.gpfsRandGBs, calibration::kGpfsRandReadPerNodeGBs, 1.0);
}

TEST(Regression, VastReadsConsistentAcrossPatterns) {
  // Takeaway: "RDMA-based VAST stays consistent" seq vs random.
  const SeqVsRandom sr = measureSeqVsRandom();
  EXPECT_LT(sr.vastDropFraction(), 0.35);
  EXPECT_GT(sr.vastRandGBs, 0.6 * sr.vastSeqGBs);
}

TEST(Regression, VastOutperformsNvmeAtSmallScaleReads) {
  // Fig 2b: "VAST is able to outperform the NVMe in smaller scales".
  const auto vast = runIorNodeSweep(Site::Wombat, StorageKind::Vast,
                                    AccessPattern::SequentialRead, {1, 8}, 48);
  const auto nvme = runIorNodeSweep(Site::Wombat, StorageKind::NvmeLocal,
                                    AccessPattern::SequentialRead, {1, 8}, 48);
  EXPECT_GT(vast[0].meanGBs, 1.5 * nvme[0].meanGBs);  // 1 node: VAST wins
  EXPECT_GT(nvme[1].meanGBs, vast[1].meanGBs);        // 8 nodes: NVMe wins
}

TEST(Regression, WombatVastMlPeaksThenSaturates) {
  // "global maximum bandwidth of 22.5 GB/s ... saturates on eight nodes".
  const auto pts = runIorNodeSweep(Site::Wombat, StorageKind::Vast,
                                   AccessPattern::RandomRead, {4, 8}, 48);
  EXPECT_NEAR(pts[0].meanGBs, calibration::kWombatMlPeakGBs, 6.0);
  EXPECT_NEAR(pts[1].meanGBs / pts[0].meanGBs, 1.0, 0.1);  // saturated
}

TEST(Regression, SingleNodeFsyncVastBeatsNvmeBy5x) {
  // Fig 3d: "VAST performs almost 5x better ... than the NVMe".
  const auto vast = runIorProcSweep(Site::Wombat, StorageKind::Vast,
                                    AccessPattern::SequentialWrite, {32});
  const auto nvme = runIorProcSweep(Site::Wombat, StorageKind::NvmeLocal,
                                    AccessPattern::SequentialWrite, {32});
  const double factor = vast[0].meanGBs / nvme[0].meanGBs;
  EXPECT_GT(factor, 3.0);
  EXPECT_LT(factor, 8.0);
  EXPECT_NEAR(vast[0].meanGBs, calibration::kWombatSingleNodeWriteGBs, 2.0);
}

TEST(Regression, QuartzVastIsGatewayStarved) {
  // Fig 3b: VAST flat and tiny on Quartz (2x1Gb gateway links).
  const auto vast = runIorProcSweep(Site::Quartz, StorageKind::Vast,
                                    AccessPattern::SequentialRead, {32});
  const auto lustre = runIorProcSweep(Site::Quartz, StorageKind::Lustre,
                                      AccessPattern::SequentialRead, {32});
  EXPECT_LT(vast[0].meanGBs, 0.5);
  EXPECT_GT(lustre[0].meanGBs, 10.0 * vast[0].meanGBs);
}

TEST(Regression, LustreFsyncWritesScaleAlmostLinearly) {
  // Fig 3b/3c: "Lustre ... almost linear increase in bandwidth".
  const auto pts = runIorProcSweep(Site::Ruby, StorageKind::Lustre,
                                   AccessPattern::SequentialWrite, {4, 16});
  EXPECT_GT(pts[1].meanGBs, 3.0 * pts[0].meanGBs);
}

TEST(Regression, ResNetIoMostlyOverlapsOnVastAtModerateScale) {
  // Fig 4a/5: VAST spends more I/O time than GPFS but hides most of it.
  DlioConfig cfg;
  cfg.workload = DlioWorkload::resnet50();
  cfg.nodes = 4;
  cfg.procsPerNode = 4;
  const DlioResult vast = runDlio(Site::Lassen, StorageKind::Vast, cfg);
  const DlioResult gpfs = runDlio(Site::Lassen, StorageKind::Gpfs, cfg);
  EXPECT_GT(vast.breakdown.totalIo, gpfs.breakdown.totalIo);        // more I/O on VAST
  EXPECT_GT(vast.breakdown.overlappingIo, vast.breakdown.nonOverlappingIo);
  EXPECT_GT(gpfs.throughput.system, vast.throughput.system);        // Fig 5b
}

TEST(Regression, CosmoflowFavorsGpfs) {
  // Fig 6: "GPFS serves Cosmoflow better than VAST".
  DlioConfig cfg;
  cfg.workload = DlioWorkload::cosmoflow();
  cfg.nodes = 8;
  cfg.procsPerNode = 4;
  const DlioResult vast = runDlio(Site::Lassen, StorageKind::Vast, cfg);
  const DlioResult gpfs = runDlio(Site::Lassen, StorageKind::Gpfs, cfg);
  EXPECT_GT(gpfs.throughput.application, vast.throughput.application);
  EXPECT_GT(gpfs.throughput.system, vast.throughput.system);
  EXPECT_GT(vast.breakdown.nonOverlappingIo, gpfs.breakdown.nonOverlappingIo);
}

TEST(Regression, AllCalibrationChecksPass) {
  for (const auto& check : runAllChecks()) {
    EXPECT_TRUE(check.pass()) << check.name << ": paper=" << check.paperValue
                              << " measured=" << check.measured;
  }
}

}  // namespace
}  // namespace hcsim
