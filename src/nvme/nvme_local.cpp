#include "nvme/nvme_local.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "telemetry/metrics_registry.hpp"

namespace hcsim {

namespace {
constexpr Bandwidth kUncapped = std::numeric_limits<Bandwidth>::infinity();
}

void NvmeLocalConfig::validate() const {
  if (drivesPerNode == 0) throw std::invalid_argument("NvmeLocalConfig: drivesPerNode must be > 0");
  if (memoryBandwidth <= 0.0) {
    throw std::invalid_argument("NvmeLocalConfig: memoryBandwidth must be > 0");
  }
  if (flushLatency < 0.0) throw std::invalid_argument("NvmeLocalConfig: flushLatency must be >= 0");
}

NvmeLocalConfig NvmeLocalConfig::wombatInstance() {
  return NvmeLocalConfig{};  // defaults describe Wombat's 3x 970 PRO nodes
}

NvmeLocalModel::NvmeLocalModel(Simulator& sim, Topology& topo, NvmeLocalConfig config,
                               std::vector<LinkId> clientNics, std::uint64_t rngSeed)
    : StorageModelBase(sim, topo, config.name, std::move(clientNics), rngSeed),
      cfg_(std::move(config)),
      pool_(cfg_.drive, cfg_.drivesPerNode) {
  cfg_.validate();
  configureMetadataPath(clientNodeCount(), cfg_.metadataServiceTime, cfg_.syscallLatency,
                        /*sharedDirPenalty=*/1.0);
  configureSharedFilePenalty(cfg_.sharedFileLockLatency, cfg_.sharedFileEfficiency);
}

void NvmeLocalModel::submitMeta(const MetaRequest& req, IoCallback cb) {
  MetaRequest local = req;
  local.sharedDirectory = false;
  // Spread by issuing node: each node's kernel is its own metadata server.
  local.fileId = req.client.node;
  StorageModelBase::submitMeta(local, std::move(cb));
}

NvmeLocalModel::NodeState& NvmeLocalModel::nodeState(std::uint32_t node) {
  auto it = nodes_.find(node);
  if (it != nodes_.end()) return it->second;
  NodeState st;
  st.readLink = topology().addLink(cfg_.name + ".n" + std::to_string(node) + ".read",
                                   pool_.effectiveBandwidth(AccessPattern::SequentialRead,
                                                            units::MiB));
  st.writeLink = topology().addLink(cfg_.name + ".n" + std::to_string(node) + ".write",
                                    pool_.effectiveBandwidth(AccessPattern::SequentialWrite,
                                                             units::MiB));
  st.pageCache = std::make_unique<WritebackBuffer>(
      cfg_.dirtyLimitBytes,
      pool_.effectiveBandwidth(AccessPattern::SequentialWrite, units::MiB));
  auto [ins, ok] = nodes_.emplace(node, std::move(st));
  configureNode(ins->second);
  return ins->second;
}

bool NvmeLocalModel::applyFault(const FaultSpec& f) {
  if (f.component != "drive") return false;
  if (f.index >= clientNodeCount()) throw std::out_of_range("nvme: drive index out of range");
  NodeState& st = nodeState(static_cast<std::uint32_t>(f.index));
  FlowNetwork& net = topology().network();
  const double health = f.action == FaultAction::Fail      ? 0.0
                        : f.action == FaultAction::FailSlow ? f.severity
                                                            : 1.0;
  net.setLinkHealth(st.readLink, health);
  net.setLinkHealth(st.writeLink, health);
  return true;
}

std::size_t NvmeLocalModel::faultComponentCount(const std::string& component) const {
  return component == "drive" ? clientNodeCount() : 0;
}

Route NvmeLocalModel::rebuildRoute(const FaultSpec& restored) {
  return {nodeState(static_cast<std::uint32_t>(restored.index)).writeLink};
}

Bandwidth NvmeLocalModel::syncWriteBandwidth(Bytes reqSize) const {
  const double req = std::max<double>(1.0, static_cast<double>(reqSize));
  const Seconds perOp = cfg_.flushLatency + cfg_.drive.writeLatency + req / cfg_.drive.writeBandwidth;
  return req / perOp * static_cast<double>(cfg_.drivesPerNode);
}

Bandwidth NvmeLocalModel::writebackBandwidth(Bytes perNodeBytes, Bytes reqSize,
                                             const NodeState& st) const {
  const Bandwidth deviceRate = pool_.effectiveBandwidth(AccessPattern::SequentialWrite, reqSize);
  if (perNodeBytes == 0) return deviceRate;
  const double total = static_cast<double>(perNodeBytes);
  const Bytes dirtyNow = st.pageCache->dirty(simulator().now());
  const double headroom =
      static_cast<double>(cfg_.dirtyLimitBytes > dirtyNow ? cfg_.dirtyLimitBytes - dirtyNow : 0);
  // Absorb `headroom` at memory speed; the remainder throttles to device
  // rate (the kernel's dirty throttling).
  const double tMem = total / cfg_.memoryBandwidth;
  const double throttled = std::max(0.0, total - headroom);
  const double time = std::max(tMem, throttled / deviceRate);
  return time > 0.0 ? total / time : cfg_.memoryBandwidth;
}

void NvmeLocalModel::configureNode(NodeState& st) {
  const PhaseSpec& ph = phase();
  const Bytes req = ph.requestSize ? ph.requestSize : units::MiB;
  FlowNetwork& net = topology().network();

  const AccessPattern readPattern =
      isSequential(ph.pattern) ? AccessPattern::SequentialRead : AccessPattern::RandomRead;
  net.setLinkCapacity(st.readLink, pool_.effectiveBandwidth(readPattern, req));

  Bandwidth writeCap;
  if (ph.fsync) {
    writeCap = syncWriteBandwidth(req);
  } else {
    const Bytes perNode =
        ph.workingSetBytes > 0 && ph.nodes > 0 ? ph.workingSetBytes / ph.nodes : 0;
    writeCap = writebackBandwidth(perNode, req, st);
  }
  net.setLinkCapacity(st.writeLink, writeCap);
}

void NvmeLocalModel::onPhaseChange() {
  for (auto& [node, st] : nodes_) configureNode(st);
}

Bandwidth NvmeLocalModel::nodeWriteCapacity(std::uint32_t node) const {
  const auto it = nodes_.find(node);
  return it == nodes_.end() ? 0.0 : topology().network().link(it->second.writeLink).capacity;
}

Bandwidth NvmeLocalModel::nodeReadCapacity(std::uint32_t node) const {
  const auto it = nodes_.find(node);
  return it == nodes_.end() ? 0.0 : topology().network().link(it->second.readLink).capacity;
}

void NvmeLocalModel::exportMetrics(telemetry::MetricsRegistry& reg) const {
  StorageModelBase::exportMetrics(reg);
  const std::string& n = name();
  reg.gauge(n + ".nodes.active", static_cast<double>(nodes_.size()));
  // Sum in node order: unordered_map iteration order must not leak into
  // the (floating-point) total.
  std::vector<std::uint32_t> ids;
  ids.reserve(nodes_.size());
  for (const auto& [node, st] : nodes_) ids.push_back(node);
  std::sort(ids.begin(), ids.end());
  double dirty = 0.0;
  const SimTime now = simulator().now();
  for (std::uint32_t node : ids) {
    const NodeState& st = nodes_.at(node);
    if (st.pageCache) dirty += static_cast<double>(st.pageCache->dirty(now));
  }
  reg.gauge(n + ".pagecache.dirty_bytes", dirty);
}

void NvmeLocalModel::submit(const IoRequest& req, IoCallback cb) {
  if (req.bytes == 0) {
    const SimTime start = simulator().now();
    simulator().schedule(cfg_.syscallLatency, [cb = std::move(cb), start, this] {
      if (cb) cb(IoResult{start, simulator().now(), 0});
    });
    return;
  }

  NodeState& st = nodeState(req.client.node);
  const bool rd = isRead(req.pattern);
  Route route{rd ? st.readLink : st.writeLink};

  Seconds perOp = cfg_.syscallLatency;
  if (rd) {
    perOp += pool_.requestLatency(req.pattern);
  } else if (req.fsync) {
    // The flush serialization is already in the link capacity; charge the
    // submission latency only.
    perOp += cfg_.drive.writeLatency;
  }

  if (!rd && !req.fsync) {
    // A flow class dirties every member's payload in the page cache.
    st.pageCache->absorb(req.bytes * req.members, simulator().now());
  }

  launchTransfer(req, req.bytes, route, kUncapped, perOp, cfg_.syscallLatency, std::move(cb));
}


transport::TransportProfile NvmeLocalModel::declaredTransportProfile() const {
  transport::TransportProfile p = transport::TransportProfile::rdma();
  p.lanes = std::max<std::size_t>(1, cfg_.drivesPerNode);
  p.baseRtt = units::usec(10);
  return p;
}

}  // namespace hcsim
