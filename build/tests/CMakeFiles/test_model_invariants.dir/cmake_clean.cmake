file(REMOVE_RECURSE
  "CMakeFiles/test_model_invariants.dir/test_model_invariants.cpp.o"
  "CMakeFiles/test_model_invariants.dir/test_model_invariants.cpp.o.d"
  "test_model_invariants"
  "test_model_invariants.pdb"
  "test_model_invariants[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_invariants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
