#include "core/sweep.hpp"

#include <map>
#include <set>

namespace hcsim {

ResultTable makeFigureTable(const std::string& title, const std::string& xLabel,
                            const std::vector<Series>& series, bool spread) {
  ResultTable t(title);
  std::vector<std::string> header{xLabel};
  for (const auto& s : series) {
    header.push_back(s.label + " GB/s");
    if (spread) {
      header.push_back(s.label + " min");
      header.push_back(s.label + " max");
    }
  }
  t.setHeader(std::move(header));

  std::set<std::size_t> grid;
  std::vector<std::map<std::size_t, BandwidthPoint>> byX(series.size());
  for (std::size_t i = 0; i < series.size(); ++i) {
    for (const auto& p : series[i].points) {
      grid.insert(p.x);
      byX[i][p.x] = p;
    }
  }

  for (std::size_t x : grid) {
    std::vector<Cell> row;
    row.emplace_back(static_cast<double>(x));
    for (std::size_t i = 0; i < series.size(); ++i) {
      const auto it = byX[i].find(x);
      if (it == byX[i].end()) {
        row.emplace_back(std::string{});
        if (spread) {
          row.emplace_back(std::string{});
          row.emplace_back(std::string{});
        }
      } else {
        row.emplace_back(it->second.meanGBs);
        if (spread) {
          row.emplace_back(it->second.minGBs);
          row.emplace_back(it->second.maxGBs);
        }
      }
    }
    t.addRow(std::move(row));
  }
  return t;
}

std::vector<std::size_t> powersOfTwo(std::size_t limit) {
  std::vector<std::size_t> out;
  for (std::size_t v = 1; v <= limit; v *= 2) out.push_back(v);
  return out;
}

}  // namespace hcsim
