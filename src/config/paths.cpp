#include "config/paths.hpp"

namespace hcsim {

namespace {

JsonPathInfo::Kind kindOf(const JsonValue& v) {
  if (v.isBool()) return JsonPathInfo::Kind::Boolean;
  if (v.isNumber()) return JsonPathInfo::Kind::Number;
  if (v.isString()) return JsonPathInfo::Kind::String;
  if (v.isArray()) return JsonPathInfo::Kind::Array;
  return JsonPathInfo::Kind::Null;
}

void walk(const JsonValue& v, const std::string& prefix, std::vector<JsonPathInfo>& out) {
  const JsonObject* obj = v.object();
  if (!obj) {
    out.push_back({prefix, kindOf(v)});
    return;
  }
  for (const auto& [key, child] : *obj) {
    walk(child, prefix.empty() ? key : prefix + "." + key, out);
  }
}

const JsonValue* resolve(const JsonValue& root, const std::string& path) {
  const JsonValue* cur = &root;
  std::string key;
  for (std::size_t i = 0; i <= path.size(); ++i) {
    if (i < path.size() && path[i] != '.') {
      key.push_back(path[i]);
      continue;
    }
    if (key.empty()) return nullptr;
    cur = cur->find(key);
    if (!cur) return nullptr;
    key.clear();
  }
  return cur;
}

}  // namespace

const char* toString(JsonPathInfo::Kind k) {
  switch (k) {
    case JsonPathInfo::Kind::Null: return "null";
    case JsonPathInfo::Kind::Boolean: return "bool";
    case JsonPathInfo::Kind::Number: return "number";
    case JsonPathInfo::Kind::String: return "string";
    case JsonPathInfo::Kind::Array: return "array";
  }
  return "?";
}

std::vector<JsonPathInfo> enumerateJsonPaths(const JsonValue& root) {
  std::vector<JsonPathInfo> out;
  if (root.object()) walk(root, "", out);
  return out;
}

bool hasNumericPath(const JsonValue& root, const std::string& path) {
  const JsonValue* v = resolve(root, path);
  return v && v->isNumber();
}

double numberAtPath(const JsonValue& root, const std::string& path, double fallback) {
  const JsonValue* v = resolve(root, path);
  return v && v->isNumber() ? *v->number() : fallback;
}

}  // namespace hcsim
