#pragma once
// DeviceQueue — a c-server FIFO service center on the simulator.
//
// Used for latency-bound operations that serialize at a device or server:
// fsync commits, metadata lookups, NFS RPC slots. Bandwidth-bound
// transfers go through the FlowNetwork instead.

#include <cstddef>
#include <deque>
#include <functional>

#include "sim/simulator.hpp"

namespace hcsim {

class DeviceQueue {
 public:
  /// `servers` = number of operations serviced concurrently (queue depth).
  DeviceQueue(Simulator& sim, std::size_t servers, std::string name = {});

  DeviceQueue(const DeviceQueue&) = delete;
  DeviceQueue& operator=(const DeviceQueue&) = delete;

  /// Enqueue an operation taking `serviceTime` once a server is free;
  /// `onDone` fires at completion.
  void submit(Seconds serviceTime, std::function<void()> onDone);

  std::size_t queued() const { return waiting_.size(); }
  std::size_t busy() const { return busy_; }
  std::size_t servers() const { return servers_; }
  const std::string& name() const { return name_; }

  /// Operations completed over the queue's lifetime.
  std::uint64_t completed() const { return completed_; }

 private:
  struct Pending {
    Seconds serviceTime;
    std::function<void()> onDone;
  };

  void startService(Pending op);
  void onServerFree();

  Simulator& sim_;
  std::size_t servers_;
  std::string name_;
  std::size_t busy_ = 0;
  std::uint64_t completed_ = 0;
  std::deque<Pending> waiting_;
};

}  // namespace hcsim
