#pragma once
// Fixed engine-throughput scenarios shared by bench_engine's
// machine-readable mode and the check.sh perf smoke. Each scenario is a
// deterministic workload with a nominal work count that depends only on
// the scenario parameters — never on engine internals — so events/sec
// ratios between two engine builds equal their wall-time ratios.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "net/flow_network.hpp"
#include "probe/flight_recorder.hpp"
#include "sim/simulator.hpp"
#include "util/random.hpp"

namespace hcsim::benchscn {

struct ScenarioResult {
  std::string name;
  double workUnits = 0.0;  ///< nominal operations (scenario-defined)
  double seconds = 0.0;    ///< wall time of the best repetition
  double perSec() const { return seconds > 0.0 ? workUnits / seconds : 0.0; }
};

namespace detail {

template <class Fn>
double bestOf(std::size_t reps, Fn&& fn) {
  double best = -1.0;
  for (std::size_t r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    const double sec = std::chrono::duration<double>(t1 - t0).count();
    if (best < 0.0 || sec < best) best = sec;
  }
  return best;
}

}  // namespace detail

/// Schedule-heavy: N events at pseudo-random times, dispatched in one
/// run(). Work unit = one schedule+dispatch pair. `rec` attaches a
/// flight recorder so bench_probe can price the always-on hooks.
inline ScenarioResult runScheduleHeavy(std::size_t n = 400000, std::size_t reps = 3,
                                       probe::FlightRecorder* rec = nullptr) {
  ScenarioResult res;
  res.name = "schedule_heavy";
  res.workUnits = static_cast<double>(n);
  res.seconds = detail::bestOf(reps, [n, rec] {
    Simulator sim;
    sim.setRecorder(rec);
    Rng rng(42);
    for (std::size_t i = 0; i < n; ++i) sim.schedule(rng.uniform(), [] {});
    sim.run();
  });
  return res;
}

/// Cancel-heavy: keep a window of W pending events; N times, cancel a
/// pseudo-randomly chosen pending event and schedule a replacement, then
/// drain. Exercises in-place removal (or tombstone accumulation in a
/// lazy-deletion scheduler). Work unit = one cancel+schedule pair.
inline ScenarioResult runCancelHeavy(std::size_t window = 4096, std::size_t churn = 200000,
                                     std::size_t reps = 3,
                                     probe::FlightRecorder* rec = nullptr) {
  ScenarioResult res;
  res.name = "cancel_heavy";
  res.workUnits = static_cast<double>(churn);
  res.seconds = detail::bestOf(reps, [window, churn, rec] {
    Simulator sim;
    sim.setRecorder(rec);
    Rng rng(7);
    std::vector<EventId> ids(window);
    for (std::size_t i = 0; i < window; ++i) {
      ids[i] = sim.schedule(1.0 + rng.uniform(), [] {});
    }
    for (std::size_t i = 0; i < churn; ++i) {
      const std::size_t k = rng.uniformInt(static_cast<std::uint64_t>(window));
      sim.cancel(ids[k]);
      ids[k] = sim.schedule(1.0 + rng.uniform(), [] {});
    }
    sim.run();
  });
  return res;
}

/// Rebalance-heavy: F equal flows over one shared link, arrivals
/// staggered so every arrival and every completion re-rates the whole
/// active set. Nominal work = sum over arrivals and completions of the
/// active-set size ≈ F*(F+2), a pure function of F.
inline ScenarioResult runRebalanceHeavy(std::size_t flows = 600, std::size_t reps = 3,
                                        probe::FlightRecorder* rec = nullptr) {
  ScenarioResult res;
  res.name = "rebalance_heavy";
  // Arrival i re-rates i+1 active flows; completion leaving k flows
  // re-rates k. Both sums are F*(F+1)/2 over the run.
  res.workUnits = static_cast<double>(flows) * (static_cast<double>(flows) + 1.0);
  res.seconds = detail::bestOf(reps, [flows, rec] {
    Simulator sim;
    sim.setRecorder(rec);
    FlowNetwork net(sim);
    const LinkId shared = net.addLink("shared", 1e9);
    std::size_t done = 0;
    for (std::size_t i = 0; i < flows; ++i) {
      FlowSpec spec;
      spec.bytes = 50'000'000;
      spec.route = {shared};
      // Stagger arrivals so each start lands while earlier flows are
      // still active and forces a full re-rate of the set.
      spec.startupLatency = 1e-6 * static_cast<double>(i);
      net.startFlow(spec, [&done](const FlowCompletion&) { ++done; });
    }
    sim.run();
    if (done != flows) throw std::runtime_error("rebalance_heavy: lost flows");
  });
  return res;
}

}  // namespace hcsim::benchscn
