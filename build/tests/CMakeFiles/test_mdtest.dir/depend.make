# Empty dependencies file for test_mdtest.
# This may be replaced when dependencies are built.
