file(REMOVE_RECURSE
  "CMakeFiles/test_config_serialize.dir/test_config_serialize.cpp.o"
  "CMakeFiles/test_config_serialize.dir/test_config_serialize.cpp.o.d"
  "test_config_serialize"
  "test_config_serialize.pdb"
  "test_config_serialize[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_config_serialize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
