#include "telemetry/attribution.hpp"

#include <cctype>
#include <sstream>

namespace hcsim::telemetry {

namespace {

/// "n" followed by one or more digits — a per-node component.
bool isNodeComponent(const std::string& s) {
  if (s.size() < 2 || s[0] != 'n') return false;
  for (std::size_t i = 1; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

/// Strip one trailing "[digits]" instance suffix, if present.
std::string stripInstance(std::string s) {
  if (s.empty() || s.back() != ']') return s;
  const std::size_t open = s.rfind('[');
  if (open == std::string::npos) return s;
  for (std::size_t i = open + 1; i + 1 < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return s;
  }
  s.erase(open);
  return s;
}

}  // namespace

std::string stageFamily(const std::string& linkName) {
  const std::size_t dot = linkName.find('.');
  if (dot == std::string::npos) return linkName;  // pseudo stage, keep as is
  std::string family;
  std::size_t begin = dot + 1;
  while (begin <= linkName.size()) {
    std::size_t end = linkName.find('.', begin);
    if (end == std::string::npos) end = linkName.size();
    std::string part = stripInstance(linkName.substr(begin, end - begin));
    if (!part.empty() && !isNodeComponent(part)) {
      if (!family.empty()) family += '.';
      family += part;
    }
    begin = end + 1;
  }
  return family.empty() ? linkName : family;
}

std::string AttributionReport::renderTable() const {
  std::ostringstream os;
  os << "bottleneck attribution over " << spans << " span(s), " << totalSeconds
     << " s of charged op time:\n";
  os << "| stage | seconds | share % | bytes |\n";
  os << "|---|---|---|---|\n";
  for (const StageTotal& s : stages) {
    os << "| " << s.stage << " | " << s.seconds << " | " << s.sharePct << " | " << s.bytes
       << " |\n";
  }
  if (!dominantStage.empty()) {
    os << "dominant stage: " << dominantStage << " (" << dominantSharePct << "% of op time)\n";
  }
  return os.str();
}

}  // namespace hcsim::telemetry
