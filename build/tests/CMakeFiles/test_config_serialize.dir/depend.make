# Empty dependencies file for test_config_serialize.
# This may be replaced when dependencies are built.
