file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_singlenode.dir/bench_fig3_singlenode.cpp.o"
  "CMakeFiles/bench_fig3_singlenode.dir/bench_fig3_singlenode.cpp.o.d"
  "bench_fig3_singlenode"
  "bench_fig3_singlenode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_singlenode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
