# Empty dependencies file for bench_takeaways.
# This may be replaced when dependencies are built.
