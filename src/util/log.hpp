#pragma once
// Minimal leveled logging. Benchmarks and tests run with Warn by default;
// examples raise it to Info to narrate what the simulator is doing.

#include <cstdio>
#include <string>

namespace hcsim {

enum class LogLevel { Trace = 0, Debug, Info, Warn, Error, Off };

namespace log {

/// Process-wide threshold; messages below it are discarded.
void setLevel(LogLevel level);
LogLevel level();

/// printf-style logging; appends a newline.
void write(LogLevel lvl, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

}  // namespace log

#define HCSIM_LOG_TRACE(...) ::hcsim::log::write(::hcsim::LogLevel::Trace, __VA_ARGS__)
#define HCSIM_LOG_DEBUG(...) ::hcsim::log::write(::hcsim::LogLevel::Debug, __VA_ARGS__)
#define HCSIM_LOG_INFO(...) ::hcsim::log::write(::hcsim::LogLevel::Info, __VA_ARGS__)
#define HCSIM_LOG_WARN(...) ::hcsim::log::write(::hcsim::LogLevel::Warn, __VA_ARGS__)
#define HCSIM_LOG_ERROR(...) ::hcsim::log::write(::hcsim::LogLevel::Error, __VA_ARGS__)

}  // namespace hcsim
