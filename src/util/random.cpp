#include "util/random.hpp"

#include <cmath>

namespace hcsim {

std::uint64_t Rng::uniformInt(std::uint64_t n) {
  if (n == 0) return 0;
  // Lemire's nearly-divisionless method (64-bit variant using 128-bit mul).
  using u128 = unsigned __int128;
  std::uint64_t x = next();
  u128 m = static_cast<u128>(x) * static_cast<u128>(n);
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < n) {
    const std::uint64_t t = (0 - n) % n;
    while (l < t) {
      x = next();
      m = static_cast<u128>(x) * static_cast<u128>(n);
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::exponential(double mean) {
  // Inverse transform; uniform() can return 0, so flip to (0, 1].
  const double u = 1.0 - uniform();
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  if (haveSpare_) {
    haveSpare_ = false;
    return mean + stddev * spare_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double k = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * k;
  haveSpare_ = true;
  return mean + stddev * (u * k);
}

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

double Rng::normalAtLeast(double mean, double stddev, double floor) {
  const double v = normal(mean, stddev);
  return v < floor ? floor : v;
}

}  // namespace hcsim
