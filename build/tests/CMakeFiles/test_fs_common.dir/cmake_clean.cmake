file(REMOVE_RECURSE
  "CMakeFiles/test_fs_common.dir/test_fs_common.cpp.o"
  "CMakeFiles/test_fs_common.dir/test_fs_common.cpp.o.d"
  "test_fs_common"
  "test_fs_common.pdb"
  "test_fs_common[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
