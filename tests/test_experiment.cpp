#include "core/experiment.hpp"
#include "core/sweep.hpp"

#include <gtest/gtest.h>

namespace hcsim {
namespace {

TEST(Experiment, ToStringNames) {
  EXPECT_STREQ(toString(Site::Lassen), "Lassen");
  EXPECT_STREQ(toString(Site::Wombat), "Wombat");
  EXPECT_STREQ(toString(StorageKind::Vast), "VAST");
  EXPECT_STREQ(toString(StorageKind::NvmeLocal), "NVMe");
}

TEST(Experiment, MachineForMatchesPreset) {
  EXPECT_EQ(machineFor(Site::Ruby).name, "Ruby");
  EXPECT_EQ(machineFor(Site::Quartz).nodes, 3018u);
}

TEST(Experiment, MakesPaperDefinedEnvironments) {
  for (Site site : {Site::Lassen, Site::Ruby, Site::Quartz, Site::Wombat}) {
    const Environment env = makeEnvironment(site, StorageKind::Vast, 2);
    EXPECT_NE(env.fs, nullptr);
    EXPECT_NE(env.bench, nullptr);
  }
  EXPECT_NE(makeEnvironment(Site::Lassen, StorageKind::Gpfs, 1).fs, nullptr);
  EXPECT_NE(makeEnvironment(Site::Quartz, StorageKind::Lustre, 1).fs, nullptr);
  EXPECT_NE(makeEnvironment(Site::Ruby, StorageKind::Lustre, 1).fs, nullptr);
  EXPECT_NE(makeEnvironment(Site::Wombat, StorageKind::NvmeLocal, 1).fs, nullptr);
}

TEST(Experiment, RejectsCombinationsThePaperDoesNotDefine) {
  EXPECT_THROW(makeEnvironment(Site::Wombat, StorageKind::Gpfs, 1), std::invalid_argument);
  EXPECT_THROW(makeEnvironment(Site::Lassen, StorageKind::Lustre, 1), std::invalid_argument);
  EXPECT_THROW(makeEnvironment(Site::Lassen, StorageKind::NvmeLocal, 1), std::invalid_argument);
  EXPECT_THROW(makeEnvironment(Site::Wombat, StorageKind::Lustre, 1), std::invalid_argument);
}

TEST(Experiment, NodeSweepReturnsOnePointPerCount) {
  const auto pts = runIorNodeSweep(Site::Wombat, StorageKind::Vast,
                                   AccessPattern::SequentialWrite, {1, 2, 4}, 8);
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_EQ(pts[0].x, 1u);
  EXPECT_EQ(pts[2].x, 4u);
  for (const auto& p : pts) {
    EXPECT_GT(p.meanGBs, 0.0);
    EXPECT_LE(p.minGBs, p.meanGBs);
    EXPECT_GE(p.maxGBs, p.meanGBs);
  }
}

TEST(Experiment, ProcSweepRunsSingleNode) {
  const auto pts = runIorProcSweep(Site::Wombat, StorageKind::NvmeLocal,
                                   AccessPattern::SequentialWrite, {1, 4});
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_GT(pts[1].meanGBs, pts[0].meanGBs * 0.5);
}

TEST(Experiment, RunDlioProducesTrace) {
  DlioConfig cfg;
  cfg.workload = DlioWorkload::resnet50();
  cfg.workload.samples = 16;
  cfg.nodes = 1;
  cfg.procsPerNode = 2;
  const DlioResult r = runDlio(Site::Lassen, StorageKind::Gpfs, cfg);
  EXPECT_GT(r.trace.size(), 0u);
  EXPECT_EQ(r.batchesTrained, 32u);
}

TEST(Sweep, PowersOfTwo) {
  EXPECT_EQ(powersOfTwo(8), (std::vector<std::size_t>{1, 2, 4, 8}));
  EXPECT_EQ(powersOfTwo(1), (std::vector<std::size_t>{1}));
  EXPECT_EQ(powersOfTwo(100), (std::vector<std::size_t>{1, 2, 4, 8, 16, 32, 64}));
}

TEST(Sweep, FigureTableAlignsSeries) {
  Series a{"A", {{1, 1.0, 0.9, 1.1}, {2, 2.0, 1.9, 2.1}}};
  Series b{"B", {{2, 4.0, 3.9, 4.1}, {4, 8.0, 7.9, 8.1}}};
  const ResultTable t = makeFigureTable("fig", "nodes", {a, b});
  EXPECT_EQ(t.rowCount(), 3u);  // x grid = {1, 2, 4}
  EXPECT_EQ(t.columnCount(), 3u);
  // Row for x=1 has no B value.
  EXPECT_EQ(std::get<std::string>(t.at(0, 2)), "");
  EXPECT_DOUBLE_EQ(std::get<double>(t.at(1, 2)), 4.0);
}

TEST(Sweep, FigureTableSpreadColumns) {
  Series a{"A", {{1, 1.0, 0.9, 1.1}}};
  const ResultTable t = makeFigureTable("fig", "x", {a}, /*spread=*/true);
  EXPECT_EQ(t.columnCount(), 4u);
  EXPECT_DOUBLE_EQ(std::get<double>(t.at(0, 2)), 0.9);
  EXPECT_DOUBLE_EQ(std::get<double>(t.at(0, 3)), 1.1);
}

}  // namespace
}  // namespace hcsim
