#include "gpfs/gpfs_config.hpp"

#include <stdexcept>

namespace hcsim {

void GpfsConfig::validate() const {
  if (nsdServers == 0) throw std::invalid_argument("GpfsConfig: nsdServers must be > 0");
  if (spindlesPerServer == 0) {
    throw std::invalid_argument("GpfsConfig: spindlesPerServer must be > 0");
  }
  if (serverReadBandwidth <= 0.0 || serverWriteBandwidth <= 0.0) {
    throw std::invalid_argument("GpfsConfig: server bandwidths must be > 0");
  }
  if (clientReadCap <= 0.0 || clientWriteCap <= 0.0) {
    throw std::invalid_argument("GpfsConfig: client caps must be > 0");
  }
  if (raidParityOverhead < 0.0 || raidParityOverhead >= 1.0) {
    throw std::invalid_argument("GpfsConfig: raidParityOverhead must be in [0,1)");
  }
}

GpfsConfig GpfsConfig::lassen() {
  return GpfsConfig{};  // defaults describe the Lassen instance
}

}  // namespace hcsim
