file(REMOVE_RECURSE
  "libhcsim.a"
)
