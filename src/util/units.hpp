#pragma once
// Units used throughout hcsim.
//
// Conventions:
//  * sizes are in bytes, held in std::uint64_t (`hcsim::Bytes`);
//  * simulated time is in seconds, held in double (`hcsim::Seconds`);
//  * bandwidth is in bytes per second, held in double (`hcsim::Bandwidth`).
//
// Reporting helpers format bandwidth in decimal GB/s (the unit the paper
// reports) and sizes in binary units (KiB/MiB/GiB, the unit IOR uses).

#include <cstdint>
#include <string>

namespace hcsim {

using Bytes = std::uint64_t;
using Seconds = double;
using Bandwidth = double;  ///< bytes per second

namespace units {

inline constexpr Bytes KiB = 1024ull;
inline constexpr Bytes MiB = 1024ull * KiB;
inline constexpr Bytes GiB = 1024ull * MiB;
inline constexpr Bytes TiB = 1024ull * GiB;
inline constexpr Bytes PiB = 1024ull * TiB;

inline constexpr Bytes KB = 1000ull;
inline constexpr Bytes MB = 1000ull * KB;
inline constexpr Bytes GB = 1000ull * MB;
inline constexpr Bytes TB = 1000ull * GB;
inline constexpr Bytes PB = 1000ull * TB;

/// Gigabits/sec expressed in bytes/sec — network links are usually quoted
/// in Gb/s (e.g. "2x100Gb Ethernet").
inline constexpr Bandwidth gbps(double gigabits) { return gigabits * 1e9 / 8.0; }

/// Decimal GB/s expressed in bytes/sec — the unit the paper reports.
inline constexpr Bandwidth gbs(double gigabytes) { return gigabytes * 1e9; }

/// Bytes/sec -> decimal GB/s.
inline constexpr double toGBs(Bandwidth bytesPerSec) { return bytesPerSec / 1e9; }

inline constexpr Seconds usec(double us) { return us * 1e-6; }
inline constexpr Seconds msec(double ms) { return ms * 1e-3; }
inline constexpr Seconds nsec(double ns) { return ns * 1e-9; }

}  // namespace units

/// "1.50 GiB", "256.00 KiB", ... (binary units; IOR-style).
std::string formatBytes(Bytes n);

/// "12.34 GB/s" (decimal units; paper-style).
std::string formatBandwidth(Bandwidth bytesPerSec);

/// "1.234 s", "12.3 ms", "45.6 us" — chooses a readable scale.
std::string formatSeconds(Seconds t);

}  // namespace hcsim
