#pragma once
// hcsim::chaos — declarative fault scenarios over a simulated deployment.
//
// A ChaosSpec is a JSON document: pick a site + storage system + a steady
// foreground workload, then list timed fault events ("at t=30 fail cnode 0",
// "at t=45 slow link nvme0.write to 30%", "at t=60 restore cnode 0 and
// rebuild 64 GiB"). The runner (chaos_runner.hpp) injects the events into
// the simulation clock, drives the workload with client-side retry/backoff,
// and reports a time-sliced bandwidth/availability timeline.
//
// Spec shape (all keys optional unless noted):
//   {
//     "name": "cnode-failover",
//     "site": "lassen",                 // lassen|ruby|quartz|wombat
//     "storage": "vast",                // vast|gpfs|lustre|nvme|daos
//     "storageConfig": { ... },         // lenient overrides, as in sweep
//     "transport": { ... },             // optional hcsim::transport endpoint
//                                       //   overrides ({} = declared profile)
//     "workload": {
//       "nodes": 12, "procsPerNode": 8,
//       "access": "seq-write",          // seq-read|seq-write|rand-read|rand-write
//       "requestBytes": 16777216
//     },
//     "horizonSec": 90.0,
//     "intervalSec": 5.0,               // timeline sample width
//     "degradedTolerance": 0.02,        // interval is "degraded" below
//                                       //   healthy*(1 - tolerance)
//     "retry": {                        // "retry": false disables the layer
//       "timeoutSec": 30.0, "maxRetries": 4,
//       "backoffBaseSec": 0.25, "backoffMultiplier": 2.0
//     },
//     "monitors": [                     // SLO watchdogs (probe/monitor.hpp)
//       {"metric": "goodputGBs", "min": 4.0, "windowSec": 15},
//       {"metric": "recoverySec", "max": 20}
//     ],
//     "events": [                       // required to be an array if present
//       {"atSec": 30.0, "action": "fail",      "component": "cnode", "index": 0},
//       {"atSec": 45.0, "action": "fail-slow", "component": "nsd",   "index": 1,
//        "severity": 0.3},
//       {"atSec": 50.0, "action": "fail-slow", "link": "oss0.device",
//        "severity": 0.5},
//       {"atSec": 60.0, "action": "restore",   "component": "cnode", "index": 0,
//        "rebuildGiB": 64.0}
//     ]
//   }

#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "fs/client_session.hpp"
#include "fs/fault.hpp"
#include "probe/monitor.hpp"
#include "util/json.hpp"

namespace hcsim::chaos {

/// One timed fault-schedule entry.
struct ChaosEvent {
  Seconds at = 0.0;        ///< simulation time the event fires
  FaultSpec fault;         ///< what happens (see fs/fault.hpp)
  double rebuildGiB = 0.0; ///< restore only: background resync traffic
};

/// The steady foreground workload the faults disturb.
struct ChaosWorkload {
  std::size_t nodes = 4;
  std::size_t procsPerNode = 8;
  AccessPattern access = AccessPattern::SequentialWrite;
  Bytes requestBytes = 16ull * 1024 * 1024;
  /// Flow-class width (hcsim::scale): each of the nodes*procsPerNode
  /// sessions stands for this many identical clients. 1 = the legacy
  /// one-client-per-session drill, byte-identical to before the knob.
  std::size_t clientsPerProc = 1;
};

/// A full parsed scenario.
struct ChaosSpec {
  std::string name = "chaos";
  Site site = Site::Lassen;
  StorageKind storage = StorageKind::Vast;
  JsonValue storageConfig;  ///< null = site preset as-is
  /// Raw "transport" section: merged onto the model's declared endpoint
  /// profile and routed through hcsim::transport. null = no fabric.
  JsonValue transport;
  ChaosWorkload workload;
  Seconds horizon = 90.0;
  Seconds interval = 5.0;
  double degradedTolerance = 0.02;
  bool retryEnabled = true;
  RetryPolicy retry;
  std::vector<ChaosEvent> events;
  /// SLO watchdogs evaluated online against the timeline samplers
  /// (p99OpLatencySec is rejected at parse time — the chaos drill does
  /// not collect per-op latency).
  std::vector<probe::MonitorSpec> monitors;
};

/// Parse a scenario from JSON. On failure returns false and sets `error`
/// to an actionable message ("events[2]: 'severity' must be a number...").
bool parseChaosSpec(const JsonValue& json, ChaosSpec& out, std::string& error);

/// Read + parse a scenario file. Errors are prefixed with the path.
bool loadChaosSpec(const std::string& path, ChaosSpec& out, std::string& error);

/// Check the schedule against a concrete deployment: component kinds the
/// model actually exposes, index bounds, named links that exist, times in
/// order and inside the horizon, and a legal fail/restore state machine
/// per component (no failing what is already failed, no restoring what is
/// healthy). Returns every problem found, empty = valid.
std::vector<std::string> validateSchedule(const ChaosSpec& spec, const FileSystemModel& fs,
                                          const Topology& topo);

}  // namespace hcsim::chaos
