#include "config/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "cluster/deployments.hpp"

namespace hcsim {
namespace {

template <typename T>
T roundTrip(const T& in) {
  T out{};
  const JsonValue j = toJson(in);
  EXPECT_TRUE(fromJson(j, out));
  return out;
}

TEST(ConfigSerialize, EnumsRoundTrip) {
  for (AccessPattern p : {AccessPattern::SequentialRead, AccessPattern::SequentialWrite,
                          AccessPattern::RandomRead, AccessPattern::RandomWrite}) {
    AccessPattern out{};
    EXPECT_TRUE(fromJson(toJson(p), out));
    EXPECT_EQ(out, p);
  }
  NfsTransport t{};
  EXPECT_TRUE(fromJson(toJson(NfsTransport::Rdma), t));
  EXPECT_EQ(t, NfsTransport::Rdma);
  ScalingMode m{};
  EXPECT_TRUE(fromJson(toJson(ScalingMode::Strong), m));
  EXPECT_EQ(m, ScalingMode::Strong);
  UnifyFsPlacement pl{};
  EXPECT_TRUE(fromJson(toJson(UnifyFsPlacement::Striped), pl));
  EXPECT_EQ(pl, UnifyFsPlacement::Striped);
  AccessPattern bad{};
  EXPECT_FALSE(fromJson(JsonValue("bogus"), bad));
  EXPECT_FALSE(fromJson(JsonValue(3.0), bad));
}

TEST(ConfigSerialize, MachineRoundTrip) {
  const Machine out = roundTrip(Machine::lassen());
  EXPECT_EQ(out.name, "Lassen");
  EXPECT_EQ(out.nodes, 795u);
  EXPECT_EQ(out.coresPerNode, 44u);
  EXPECT_DOUBLE_EQ(out.nodeInjection, Machine::lassen().nodeInjection);
}

TEST(ConfigSerialize, VastConfigRoundTrip) {
  VastConfig in = vastOnWombat();
  in.dataReductionRatio = 0.42;
  in.dnodeCacheBytes = 3 * units::TB;
  const VastConfig out = roundTrip(in);
  EXPECT_EQ(out.name, in.name);
  EXPECT_EQ(out.cnodes, in.cnodes);
  EXPECT_EQ(out.transport, NfsTransport::Rdma);
  EXPECT_EQ(out.nconnect, 16u);
  EXPECT_DOUBLE_EQ(out.dataReductionRatio, 0.42);
  EXPECT_EQ(out.dnodeCacheBytes, 3 * units::TB);
  EXPECT_DOUBLE_EQ(out.qlcSpec.writeBandwidth, in.qlcSpec.writeBandwidth);
  out.validate();  // still structurally sound
}

TEST(ConfigSerialize, VastGatewayRoundTrip) {
  const VastConfig out = roundTrip(vastOnQuartz());
  EXPECT_TRUE(out.gateway.present);
  EXPECT_EQ(out.gateway.nodes, 32u);
  EXPECT_EQ(out.gateway.linksPerNode, 2u);
  EXPECT_DOUBLE_EQ(out.gateway.linkBandwidth, units::gbps(1));
}

TEST(ConfigSerialize, GpfsLustreNvmeUnifyRoundTrip) {
  const GpfsConfig g = roundTrip(gpfsOnLassen());
  EXPECT_EQ(g.nsdServers, 16u);
  EXPECT_EQ(g.capacityTotal, 24 * units::PB);

  LustreConfig l0 = lustreOnQuartz();
  l0.stripeCount = 4;
  const LustreConfig l = roundTrip(l0);
  EXPECT_EQ(l.stripeCount, 4u);
  EXPECT_EQ(l.ossCount, 36u);

  const NvmeLocalConfig n = roundTrip(nvmeOnWombat());
  EXPECT_EQ(n.drivesPerNode, 3u);
  EXPECT_EQ(n.drive.name, "Samsung970PRO");

  UnifyFsConfig u0;
  u0.placement = UnifyFsPlacement::Striped;
  const UnifyFsConfig u = roundTrip(u0);
  EXPECT_EQ(u.placement, UnifyFsPlacement::Striped);
}

TEST(ConfigSerialize, IorConfigRoundTrip) {
  IorConfig in = IorConfig::singleNodeFsync(AccessPattern::SequentialWrite, 8);
  in.stonewallSeconds = 2.5;
  in.filePerProcess = false;
  const IorConfig out = roundTrip(in);
  EXPECT_EQ(out.access, AccessPattern::SequentialWrite);
  EXPECT_EQ(out.mode, IorConfig::Mode::PerOp);
  EXPECT_TRUE(out.fsyncPerWrite);
  EXPECT_FALSE(out.filePerProcess);
  EXPECT_DOUBLE_EQ(out.stonewallSeconds, 2.5);
  EXPECT_EQ(out.procsPerNode, 8u);
}

TEST(ConfigSerialize, DlioRoundTrip) {
  DlioConfig in;
  in.workload = DlioWorkload::unet3d();
  in.nodes = 16;
  in.procsPerNode = 4;
  const DlioConfig out = roundTrip(in);
  EXPECT_EQ(out.workload.name, "unet3d");
  EXPECT_EQ(out.workload.checkpointEvery, in.workload.checkpointEvery);
  EXPECT_EQ(out.workload.checkpointBytes, in.workload.checkpointBytes);
  EXPECT_EQ(out.workload.scaling, ScalingMode::Weak);
  EXPECT_EQ(out.nodes, 16u);
}

TEST(ConfigSerialize, MdtestRoundTrip) {
  MdtestConfig in;
  in.itemsPerProc = 99;
  in.uniqueDirPerTask = true;
  const MdtestConfig out = roundTrip(in);
  EXPECT_EQ(out.itemsPerProc, 99u);
  EXPECT_TRUE(out.uniqueDirPerTask);
}

TEST(ConfigSerialize, PartialJsonKeepsDefaults) {
  JsonValue j;
  ASSERT_TRUE(parseJson(R"({"cnodes": 4, "transport": "tcp",
                            "gateway": {"present": true, "linkBandwidth": 1e9}})", j));
  VastConfig out = VastConfig::wombatInstance();  // defaults to overwrite
  ASSERT_TRUE(fromJson(j, out));
  EXPECT_EQ(out.cnodes, 4u);
  EXPECT_EQ(out.transport, NfsTransport::Tcp);
  EXPECT_TRUE(out.gateway.present);
  EXPECT_DOUBLE_EQ(out.gateway.linkBandwidth, 1e9);
  // Untouched keys keep the preset's values.
  EXPECT_EQ(out.nconnect, 16u);
  EXPECT_EQ(out.dboxes, 4u);
}

TEST(ConfigSerialize, WrongShapeRejected) {
  VastConfig out;
  EXPECT_FALSE(fromJson(JsonValue(3.0), out));
  EXPECT_FALSE(fromJson(JsonValue("x"), out));
}

TEST(ConfigSerialize, SaveAndLoadFile) {
  const std::string path = "/tmp/hcsim_cfg_test.json";
  VastConfig in = vastOnLassen();
  in.cnodes = 24;
  ASSERT_TRUE(saveConfig(in, path));
  VastConfig out;
  ASSERT_TRUE(loadConfig(path, out));
  EXPECT_EQ(out.cnodes, 24u);
  EXPECT_EQ(out.name, "VAST@Lassen");
  std::remove(path.c_str());
  EXPECT_FALSE(loadConfig("/nonexistent/cfg.json", out));
}

TEST(ConfigSerialize, LoadedConfigDrivesASimulation) {
  // The full loop: serialize -> file -> load -> run.
  const std::string path = "/tmp/hcsim_cfg_run.json";
  ASSERT_TRUE(saveConfig(vastOnWombat(), path));
  VastConfig cfg;
  ASSERT_TRUE(loadConfig(path, cfg));
  cfg.name = "fromfile";
  std::remove(path.c_str());

  TestBench bench(Machine::wombat(), 1);
  auto fs = bench.attachVast(cfg);
  PhaseSpec ph;
  ph.pattern = AccessPattern::SequentialWrite;
  ph.requestSize = units::MiB;
  fs->beginPhase(ph);
  IoRequest req;
  req.client = {0, 0};
  req.fileId = 1;
  req.bytes = units::MiB;
  req.pattern = AccessPattern::SequentialWrite;
  SimTime end = 0;
  fs->submit(req, [&](const IoResult& r) { end = r.endTime; });
  bench.sim().run();
  EXPECT_GT(end, 0.0);
}

}  // namespace
}  // namespace hcsim
