#include "gpfs/gpfs_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hcsim {

namespace {
constexpr Bandwidth kUncapped = std::numeric_limits<Bandwidth>::infinity();
}

GpfsModel::GpfsModel(Simulator& sim, Topology& topo, GpfsConfig config,
                     std::vector<LinkId> clientNics, std::uint64_t rngSeed)
    : StorageModelBase(sim, topo, config.name, std::move(clientNics), rngSeed),
      cfg_(std::move(config)),
      raid_(cfg_.hdd, cfg_.nsdServers * cfg_.spindlesPerServer, cfg_.raidParityOverhead) {
  cfg_.validate();
  configureMetadataPath(cfg_.nsdServers, cfg_.metadataServiceTime, cfg_.rpcLatency,
                        cfg_.metadataSharedDirPenalty);
  configureSharedFilePenalty(cfg_.sharedFileLockLatency, cfg_.sharedFileEfficiency);
  serverLink_ = topology().addLink(cfg_.name + ".nsd",
                                   static_cast<double>(cfg_.nsdServers) * cfg_.serverReadBandwidth,
                                   cfg_.rpcLatency / 4);
  deviceLink_ = topology().addLink(
      cfg_.name + ".raid", raid_.effectiveBandwidth(AccessPattern::SequentialRead, units::MiB));
}

LinkId GpfsModel::clientCapLink(std::uint32_t node) {
  auto it = clientCaps_.find(node);
  if (it != clientCaps_.end()) return it->second;
  // Created lazily mid-phase: capacity must match the phase in effect.
  const Bandwidth cap =
      !inPhase() || isRead(phase().pattern) ? cfg_.clientReadCap : cfg_.clientWriteCap;
  const LinkId id = topology().addLink(cfg_.name + ".client.n" + std::to_string(node), cap);
  clientCaps_.emplace(node, id);
  return id;
}

void GpfsModel::applyCapacities() {
  const PhaseSpec& ph = phase();
  const Bytes req = ph.requestSize ? ph.requestSize : units::MiB;
  FlowNetwork& net = topology().network();
  const bool readPhase = !inPhase() || isRead(ph.pattern);
  const double frac = nsdFraction();

  net.setLinkCapacity(serverLink_, static_cast<double>(cfg_.nsdServers) * frac *
                                       (readPhase ? cfg_.serverReadBandwidth
                                                  : cfg_.serverWriteBandwidth));
  net.setLinkCapacity(deviceLink_, raid_.effectiveBandwidth(ph.pattern, req) * frac);
  for (auto& [node, id] : clientCaps_) {
    net.setLinkCapacity(id, readPhase ? cfg_.clientReadCap : cfg_.clientWriteCap);
  }
}

void GpfsModel::failNsdServer(std::size_t index) {
  if (index >= cfg_.nsdServers) throw std::out_of_range("failNsdServer: bad index");
  failedNsd_.insert(index);
  applyCapacities();
}

void GpfsModel::restoreNsdServer(std::size_t index) {
  failedNsd_.erase(index);
  applyCapacities();
}

void GpfsModel::onPhaseChange() {
  const PhaseSpec& ph = phase();
  applyCapacities();
  const bool readPhase = isRead(ph.pattern);

  // Server cache: holds recently written/read data. Sequential prefetch
  // makes streaming reads effectively cache-speed regardless of working
  // set; for random reads only true residency helps.
  if (readPhase) {
    const Bytes cache = static_cast<Bytes>(static_cast<double>(cfg_.nsdServers) *
                                           nsdFraction() * cfg_.serverCacheBytes);
    if (isSequential(ph.pattern)) {
      hitRatio_ = 1.0;  // prefetch pipeline: served at server speed
    } else if (ph.workingSetBytes > 0) {
      const double effective =
          static_cast<double>(cache) * cfg_.randomCacheResidencyFactor;
      hitRatio_ = std::min(1.0, effective / static_cast<double>(ph.workingSetBytes));
    } else {
      hitRatio_ = 0.0;
    }
  } else {
    hitRatio_ = 0.0;
  }
}

Bandwidth GpfsModel::deviceCapacity() const {
  return topology().network().link(deviceLink_).capacity;
}

void GpfsModel::submit(const IoRequest& req, IoCallback cb) {
  if (req.bytes == 0) {
    const SimTime start = simulator().now();
    simulator().schedule(cfg_.rpcLatency, [cb = std::move(cb), start, this] {
      if (cb) cb(IoResult{start, simulator().now(), 0});
    });
    return;
  }

  // Common prefix: client NIC -> per-node GPFS client ceiling -> NSD pool.
  Route route;
  route.push_back(clientNic(req.client.node));
  route.push_back(clientCapLink(req.client.node));
  route.push_back(serverLink_);

  if (!isRead(req.pattern)) {
    Route wr = route;
    wr.push_back(deviceLink_);  // writes stream through to RAID
    Seconds perOp = cfg_.rpcLatency;
    if (req.fsync) perOp += cfg_.commitLatency;
    launchTransfer(req, req.bytes, wr, kUncapped, perOp, cfg_.rpcLatency, std::move(cb));
    return;
  }

  // Reads: cache-hit portion served at server speed, miss portion from
  // the RAID pool; random reads additionally pay the thrash penalty.
  Bytes hitBytes;
  if (req.ops <= 1) {
    hitBytes = rng().uniform() < hitRatio_ ? req.bytes : 0;
  } else {
    hitBytes = static_cast<Bytes>(std::llround(static_cast<double>(req.bytes) * hitRatio_));
  }
  const Bytes missBytes = req.bytes - hitBytes;

  // Served-from-cache reads pay the RPC only; the thrash/seek penalty is
  // a device-side effect charged to the miss portion below.
  const Seconds perOp = cfg_.rpcLatency;

  struct Join {
    IoCallback cb;
    SimTime start = 0.0;
    SimTime end = 0.0;
    Bytes bytes = 0;
    int outstanding = 0;
  };
  auto join = std::make_shared<Join>();
  join->cb = std::move(cb);
  join->start = simulator().now();
  auto part = [join](const IoResult& r) {
    join->end = std::max(join->end, r.endTime);
    join->bytes += r.bytes;
    if (--join->outstanding == 0 && join->cb) {
      join->cb(IoResult{join->start, join->end, join->bytes});
    }
  };
  if (hitBytes > 0) ++join->outstanding;
  if (missBytes > 0) ++join->outstanding;

  if (hitBytes > 0) {
    IoRequest sub = req;
    sub.bytes = hitBytes;
    sub.ops = std::max<std::uint64_t>(1, req.ops * hitBytes / req.bytes);
    const double frac = static_cast<double>(hitBytes) / static_cast<double>(req.bytes);
    launchTransfer(sub, hitBytes, route, kUncapped, perOp, cfg_.rpcLatency, part, frac);
  }
  if (missBytes > 0) {
    Route miss = route;
    miss.push_back(deviceLink_);
    IoRequest sub = req;
    sub.bytes = missBytes;
    sub.ops = std::max<std::uint64_t>(1, req.ops * missBytes / req.bytes);
    Seconds missOverhead = perOp + raid_.requestLatency(req.pattern);
    if (!isSequential(req.pattern)) missOverhead += cfg_.randomReadPenalty;
    const double frac = static_cast<double>(missBytes) / static_cast<double>(req.bytes);
    launchTransfer(sub, missBytes, miss, kUncapped, missOverhead, cfg_.rpcLatency, part, frac);
  }
}

}  // namespace hcsim
