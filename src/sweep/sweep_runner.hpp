#pragma once
// Parallel what-if sweep execution.
//
// Every trial builds its own TestBench — and therefore its own
// Simulator, Topology and storage model — so trials share no mutable
// state and can run concurrently. The pool is work-stealing: trials are
// dealt round-robin across workers, and a worker that drains its own
// deque steals from the back of a neighbour's, so a few slow trials
// (big node counts) do not idle the rest of the pool. Results land in a
// slot-per-trial vector, so the outcome is identical — byte for byte in
// the emitted JSONL/CSV — whatever the job count.

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "sweep/sweep_spec.hpp"
#include "util/stats.hpp"

namespace hcsim::sweep {

class TrialCache;  // sweep/trial_cache.hpp

/// Per-trial switches that do not change what is simulated. `telemetry`
/// turns on span/metric collection inside each trial environment —
/// simulated results are identical either way (asserted in tests), but
/// the extra columns make cache entries non-interchangeable, so the
/// telemetry bit is part of the cache key.
struct TrialOptions {
  bool telemetry = false;
  /// Collect wall-clock self-profiling (probe::SelfProfiler) per trial.
  /// Host timings are not reproducible, so profiled trials always
  /// simulate — they neither hit nor populate the TrialCache.
  bool selfProfile = false;
};

struct TrialMetrics {
  bool ok = false;
  std::string error;  ///< populated when !ok (bad config, impossible deployment)
  double meanGBs = 0.0;
  double minGBs = 0.0;
  double maxGBs = 0.0;
  double elapsedSec = 0.0;
  double bytesMoved = 0.0;

  /// Per-op latency contract. Only some experiments can carry a latency
  /// distribution at all (`latencyCapable`: ior and workload trials);
  /// of those, only runs where individual operations exist actually
  /// collect one (IOR PerOp mode, generators with collectOpLatency) —
  /// `hasOpLatency` distinguishes "not collected" (serialized as null,
  /// never as zeros) from a real distribution. dlio/chaos trials are not
  /// latency-capable and emit no opLatency field, as before.
  bool latencyCapable = false;
  bool hasOpLatency = false;
  double opCount = 0.0;
  double opP50 = 0.0;
  double opP95 = 0.0;
  double opP99 = 0.0;

  /// Telemetry columns (doubles so JSONL round-trips losslessly);
  /// populated only when the trial ran with TrialOptions.telemetry.
  bool hasTelemetry = false;
  double rerates = 0.0;
  double eventsScheduled = 0.0;
  double eventsCancelled = 0.0;
  double eventsAdjusted = 0.0;
  double eventsDispatched = 0.0;
  std::string dominantStage;  ///< bottleneck attribution winner ("" if no spans)
  double dominantSharePct = 0.0;

  /// SLO watchdog columns, populated when the trial's spec declared
  /// "monitors" (chaos and workload experiments).
  bool hasMonitors = false;
  double monitors = 0.0;
  double breaches = 0.0;

  /// Self-profiler columns (TrialOptions.selfProfile): wall-clock
  /// seconds the host spent per engine bucket while this trial ran.
  bool hasSelf = false;
  double selfDispatchSec = 0.0;
  double selfCallbackSec = 0.0;
  double selfSolveSec = 0.0;
  double selfTelemetrySec = 0.0;
  double selfSinkSec = 0.0;

  /// NIC/transport columns (hcsim::transport), populated only when the
  /// trial ran with a fabric attached — a "transport" section in the
  /// config, or DAOS storage (always on the fabric). Like telemetry and
  /// self, absent means the emitted bytes match a build without the
  /// feature; the columns ride LAST so older headers stay prefixes.
  bool hasTransport = false;
  double transportOps = 0.0;
  double transportBytes = 0.0;
  double transportThrottleSec = 0.0;
  double transportConnSetups = 0.0;
  double transportSqWaits = 0.0;
  double transportDoorbells = 0.0;
};

struct TrialResult {
  Trial trial;
  TrialMetrics metrics;
};

struct SweepOutcome {
  std::string name;
  std::string experiment;
  std::vector<TrialResult> results;  ///< ordered by trial index
  RunningStats bandwidthGBs;         ///< merged over successful trials
  RunningStats elapsedSec;
  std::size_t failures = 0;
  std::size_t cacheHits = 0;    ///< trials served from the TrialCache (0 without one)
  std::size_t cacheMisses = 0;  ///< trials actually simulated when a cache was given
};

/// The --jobs default: hardware concurrency (1 when unknown).
std::size_t defaultJobs();

/// Run one trial config ("site"/"storage"/workload section/optional
/// "storageConfig" overrides) on a fresh environment. Never throws:
/// failures come back as !ok with the reason in .error.
TrialMetrics runTrial(const std::string& experiment, const JsonValue& config,
                      const TrialOptions& opts = {});

/// Work-stealing parallel loop over [0, n): each index is claimed by
/// exactly one worker, so `fn` may write its own result slot without
/// synchronization. jobs == 0 means defaultJobs().
void parallelFor(std::size_t n, std::size_t jobs, const std::function<void(std::size_t)>& fn);

/// Run many independent trial configs on the work-stealing pool — the
/// reusable core under runSweep, exposed for other subsystems (the
/// oracle evaluates metamorphic-relation cases through it). Results are
/// slot-per-config, so the output is identical whatever the job count.
/// Configs are only read, never mutated, so callers may pass shallow
/// copies that share JSON trees. When `cache` is non-null, trials whose
/// canonical key is already cached skip simulation entirely; misses are
/// simulated and inserted. Trials are deterministic, so results — and
/// therefore emitted bytes — are identical with or without a cache.
std::vector<TrialMetrics> runTrialBatch(const std::string& experiment,
                                        const std::vector<JsonValue>& configs, std::size_t jobs,
                                        TrialCache* cache = nullptr,
                                        const TrialOptions& opts = {});

/// Expand the spec and run every trial on `jobs` workers (0 = default),
/// optionally memoizing through `cache`.
SweepOutcome runSweep(const SweepSpec& spec, std::size_t jobs, TrialCache* cache = nullptr,
                      const TrialOptions& opts = {});

}  // namespace hcsim::sweep
