#include "core/experiment.hpp"

#include <stdexcept>

#include "config/serialize.hpp"

namespace hcsim {

const char* toString(Site s) {
  switch (s) {
    case Site::Lassen: return "Lassen";
    case Site::Ruby: return "Ruby";
    case Site::Quartz: return "Quartz";
    case Site::Wombat: return "Wombat";
  }
  return "?";
}

const char* toString(StorageKind k) {
  switch (k) {
    case StorageKind::Vast: return "VAST";
    case StorageKind::Gpfs: return "GPFS";
    case StorageKind::Lustre: return "Lustre";
    case StorageKind::NvmeLocal: return "NVMe";
    case StorageKind::Daos: return "DAOS";
  }
  return "?";
}

Machine machineFor(Site site) {
  switch (site) {
    case Site::Lassen: return Machine::lassen();
    case Site::Ruby: return Machine::ruby();
    case Site::Quartz: return Machine::quartz();
    case Site::Wombat: return Machine::wombat();
  }
  throw std::invalid_argument("machineFor: unknown site");
}

Environment makeEnvironment(Site site, StorageKind kind, std::size_t nodes) {
  return makeEnvironment(site, kind, nodes, nullptr);
}

Environment makeEnvironment(Site site, StorageKind kind, std::size_t nodes,
                            const JsonValue* storageOverrides) {
  return makeEnvironment(site, kind, nodes, storageOverrides, nullptr);
}

Environment makeEnvironment(Site site, StorageKind kind, std::size_t nodes,
                            const JsonValue* storageOverrides, const JsonValue* transportSection) {
  Environment env;
  env.bench = std::make_unique<TestBench>(machineFor(site), nodes);
  const auto badOverrides = [] {
    return std::invalid_argument("makeEnvironment: 'storageConfig' overrides do not parse");
  };
  switch (kind) {
    case StorageKind::Vast: {
      VastConfig c = site == Site::Lassen   ? vastOnLassen()
                     : site == Site::Ruby   ? vastOnRuby()
                     : site == Site::Quartz ? vastOnQuartz()
                                            : vastOnWombat();
      if (storageOverrides && !fromJson(*storageOverrides, c)) throw badOverrides();
      env.fs = env.bench->attachVast(std::move(c));
      break;
    }
    case StorageKind::Gpfs: {
      if (site != Site::Lassen) {
        throw std::invalid_argument("makeEnvironment: the paper only tests GPFS on Lassen");
      }
      GpfsConfig c = gpfsOnLassen();
      if (storageOverrides && !fromJson(*storageOverrides, c)) throw badOverrides();
      env.fs = env.bench->attachGpfs(std::move(c));
      break;
    }
    case StorageKind::Lustre: {
      if (site != Site::Quartz && site != Site::Ruby) {
        throw std::invalid_argument("makeEnvironment: the paper tests Lustre on Quartz/Ruby");
      }
      LustreConfig c = site == Site::Quartz ? lustreOnQuartz() : lustreOnRuby();
      if (storageOverrides && !fromJson(*storageOverrides, c)) throw badOverrides();
      env.fs = env.bench->attachLustre(std::move(c));
      break;
    }
    case StorageKind::NvmeLocal: {
      if (site != Site::Wombat) {
        throw std::invalid_argument("makeEnvironment: node-local NVMe is only on Wombat");
      }
      NvmeLocalConfig c = nvmeOnWombat();
      if (storageOverrides && !fromJson(*storageOverrides, c)) throw badOverrides();
      env.fs = env.bench->attachNvme(std::move(c));
      break;
    }
    case StorageKind::Daos: {
      // DAOS is not one of the paper's deployments; its pool is wired
      // with its own fabric and is reachable from any site's machine.
      DaosConfig c = daosInstance();
      if (storageOverrides && !fromJson(*storageOverrides, c)) throw badOverrides();
      env.fs = env.bench->attachDaos(std::move(c));
      break;
    }
  }
  // Attach the NIC/transport layer when the spec opts in — or always for
  // DAOS, the one model built on the fabric from day one. A null section
  // for the other models leaves the launch path byte-identical to a
  // build without hcsim::transport (the zero-cost contract).
  if (transportSection || kind == StorageKind::Daos) {
    transport::TransportProfile profile = env.fs->declaredTransportProfile();
    if (transportSection && !transport::fromJson(*transportSection, profile)) {
      throw std::invalid_argument("makeEnvironment: 'transport' overrides do not parse");
    }
    profile.validate();
    env.transport = std::make_unique<transport::TransportFabric>(
        env.bench->sim(), env.bench->topo().network(), profile, &env.bench->recorder());
    env.fs->setTransport(env.transport.get());
  }
  return env;
}

namespace {
BandwidthPoint toPoint(std::size_t x, const IorResult& r) {
  BandwidthPoint p;
  p.x = x;
  p.meanGBs = units::toGBs(r.bandwidth.mean);
  p.minGBs = units::toGBs(r.bandwidth.min);
  p.maxGBs = units::toGBs(r.bandwidth.max);
  return p;
}
}  // namespace

std::vector<BandwidthPoint> runIorNodeSweep(Site site, StorageKind kind, AccessPattern access,
                                            const std::vector<std::size_t>& nodeCounts,
                                            std::size_t procsPerNode, std::size_t repetitions,
                                            double noiseFrac) {
  std::vector<BandwidthPoint> out;
  out.reserve(nodeCounts.size());
  for (std::size_t nodes : nodeCounts) {
    // NVMe scalability reads require one extra node as the round-robin
    // copy source; the TestBench wires nodes only, copies are uncounted.
    Environment env = makeEnvironment(site, kind, nodes);
    IorRunner runner(*env.bench, *env.fs);
    IorConfig cfg = IorConfig::scalability(access, nodes, procsPerNode);
    cfg.repetitions = repetitions;
    cfg.noiseStdDevFrac = noiseFrac;
    out.push_back(toPoint(nodes, runner.run(cfg)));
  }
  return out;
}

std::vector<BandwidthPoint> runIorProcSweep(Site site, StorageKind kind, AccessPattern access,
                                            const std::vector<std::size_t>& procCounts,
                                            std::size_t repetitions, double noiseFrac) {
  std::vector<BandwidthPoint> out;
  out.reserve(procCounts.size());
  for (std::size_t procs : procCounts) {
    Environment env = makeEnvironment(site, kind, 1);
    IorRunner runner(*env.bench, *env.fs);
    IorConfig cfg = IorConfig::singleNodeFsync(access, procs);
    cfg.repetitions = repetitions;
    cfg.noiseStdDevFrac = noiseFrac;
    out.push_back(toPoint(procs, runner.run(cfg)));
  }
  return out;
}

DlioResult runDlio(Site site, StorageKind kind, const DlioConfig& cfg) {
  Environment env = makeEnvironment(site, kind, cfg.nodes);
  DlioRunner runner(*env.bench, *env.fs);
  return runner.run(cfg);
}

}  // namespace hcsim
