#include "contention/background_load.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

namespace hcsim {

BackgroundLoad::BackgroundLoad(TestBench& bench, FileSystemModel& fs, TenantSpec spec)
    : bench_(bench), fs_(fs), spec_(spec), rng_(spec.seed) {
  if (spec_.tenants == 0 || spec_.procsPerTenant == 0) {
    throw std::invalid_argument("TenantSpec: tenants and procsPerTenant must be > 0");
  }
  if (spec_.bytesPerBurst == 0) {
    throw std::invalid_argument("TenantSpec: bytesPerBurst must be > 0");
  }
  if (spec_.meanInterarrival <= 0.0) {
    throw std::invalid_argument("TenantSpec: meanInterarrival must be > 0");
  }
}

void BackgroundLoad::start() {
  stopped_ = false;
  for (std::size_t t = 0; t < spec_.tenants; ++t) {
    // Desynchronized first bursts.
    bench_.sim().schedule(rng_.exponential(spec_.meanInterarrival * 0.5),
                          [this, t] { tenantLoop(t); });
  }
}

void BackgroundLoad::tenantLoop(std::size_t tenant) {
  if (stopped_) return;
  IoRequest req;
  req.client = ClientId{static_cast<std::uint32_t>(spec_.firstNode + tenant), 0};
  req.fileId = 0xbead0000 + tenant * 4096 + burstsCompleted_;
  req.bytes = spec_.bytesPerBurst;
  req.pattern = spec_.pattern;
  req.ops = std::max<std::uint64_t>(1, spec_.bytesPerBurst / units::MiB);
  req.streams = static_cast<std::uint32_t>(spec_.procsPerTenant);
  fs_.submit(req, [this, tenant](const IoResult& r) {
    bytesCompleted_ += r.bytes;
    ++burstsCompleted_;
    if (stopped_) return;
    bench_.sim().schedule(rng_.exponential(spec_.meanInterarrival),
                          [this, tenant] { tenantLoop(tenant); });
  });
}

ContendedResult runIorUnderContention(TestBench& bench, FileSystemModel& fs,
                                      const IorConfig& cfg, TenantSpec spec) {
  cfg.validate();
  if (cfg.mode != IorConfig::Mode::Coalesced) {
    throw std::invalid_argument("runIorUnderContention: coalesced mode only");
  }
  if (spec.firstNode < cfg.nodes) spec.firstNode = static_cast<std::uint32_t>(cfg.nodes);
  if (spec.firstNode + spec.tenants > bench.nodesUsed()) {
    throw std::invalid_argument(
        "runIorUnderContention: bench must wire foreground + tenant nodes");
  }

  PhaseSpec phase;
  phase.pattern = cfg.access;
  phase.requestSize = cfg.transferSize;
  phase.nodes = static_cast<std::uint32_t>(cfg.nodes);
  phase.procsPerNode = static_cast<std::uint32_t>(cfg.procsPerNode);
  phase.readerDiffersFromWriter = cfg.reorderTasks;
  phase.workingSetBytes = cfg.totalBytes();
  fs.beginPhase(phase);

  BackgroundLoad load(bench, fs, spec);
  load.start();

  Simulator& sim = bench.sim();
  const SimTime start = sim.now();
  SimTime lastEnd = start;
  std::size_t outstanding = 0;  // live foreground chains
  const std::size_t slots =
      std::min<std::size_t>(cfg.procsPerNode, std::max<std::size_t>(1, fs.clientParallelism()));

  // The foreground issues segment by segment (one block per submit)
  // instead of one coalesced flow for the whole run: each segment
  // samples the storage model's contention state at its own submit time,
  // so tenant phasing shows up in the elapsed time the way it does on a
  // real shared machine.
  struct Chain {
    FileSystemModel* fs = nullptr;
    BackgroundLoad* load = nullptr;
    IoRequest req;                // one segment's worth
    std::uint64_t remaining = 0;  // segments left
    SimTime* lastEnd = nullptr;
    std::size_t* outstanding = nullptr;

    void issue() {
      fs->submit(req, [this](const IoResult& r) {
        *lastEnd = std::max(*lastEnd, r.endTime);
        if (--remaining > 0) {
          issue();
        } else if (--*outstanding == 0) {
          load->stop();  // let the sim drain
        }
      });
    }
  };
  std::vector<std::unique_ptr<Chain>> chains;
  chains.reserve(cfg.nodes * slots);
  const std::uint64_t opsPerBlock =
      std::max<std::uint64_t>(1, cfg.blockSize / cfg.transferSize);
  for (std::uint32_t n = 0; n < cfg.nodes; ++n) {
    for (std::uint32_t slot = 0; slot < slots; ++slot) {
      const std::uint32_t streams =
          static_cast<std::uint32_t>((cfg.procsPerNode - slot + slots - 1) / slots);
      auto chain = std::make_unique<Chain>();
      chain->fs = &fs;
      chain->load = &load;
      chain->req.client = ClientId{n, slot};
      chain->req.fileId = static_cast<std::uint64_t>(n) * cfg.procsPerNode + slot + 1;
      chain->req.bytes = cfg.blockSize * streams;
      chain->req.pattern = cfg.access;
      chain->req.sharedFile = !cfg.filePerProcess;
      chain->req.ops = opsPerBlock * streams;
      chain->req.streams = streams;
      chain->remaining = cfg.segments;
      chain->lastEnd = &lastEnd;
      chain->outstanding = &outstanding;
      ++outstanding;
      chains.push_back(std::move(chain));
    }
  }
  for (auto& chain : chains) chain->issue();
  sim.run();
  fs.endPhase();
  if (outstanding != 0) {
    throw std::logic_error("runIorUnderContention: drained with outstanding foreground I/O");
  }

  ContendedResult result;
  const Seconds elapsed = lastEnd - start;
  result.foreground.totalBytes = cfg.totalBytes();
  result.foreground.samples = {static_cast<double>(cfg.totalBytes()) / elapsed};
  result.foreground.bandwidth = summarize(result.foreground.samples);
  result.foreground.meanElapsed = elapsed;
  result.backgroundBytes = load.bytesCompleted();
  result.backgroundBursts = load.burstsCompleted();
  return result;
}

}  // namespace hcsim
