#include "mdtest/mdtest.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/random.hpp"

namespace hcsim {

void MdtestConfig::validate() const {
  if (nodes == 0 || procsPerNode == 0) {
    throw std::invalid_argument("MdtestConfig: nodes and procsPerNode must be > 0");
  }
  if (itemsPerProc == 0) throw std::invalid_argument("MdtestConfig: itemsPerProc must be > 0");
  if (repetitions == 0) throw std::invalid_argument("MdtestConfig: repetitions must be > 0");
}

Seconds MdtestRunner::runPhase(const MdtestConfig& cfg, MetaOp op) {
  Simulator& sim = bench_.sim();
  const SimTime start = sim.now();
  SimTime lastEnd = start;
  std::size_t running = cfg.totalProcs();

  // Each process is a sequential chain of metadata ops.
  struct Proc {
    MdtestRunner* self;
    const MdtestConfig* cfg;
    ClientId client;
    MetaOp op;
    std::uint64_t rank;
    std::size_t remaining;
    SimTime* lastEnd;
    std::size_t* running;

    void next() {
      MetaRequest req;
      req.client = client;
      req.op = op;
      // Item id: rank-major so unique-dir routing spreads by rank.
      req.fileId = cfg->uniqueDirPerTask ? rank : rank * cfg->itemsPerProc + remaining;
      req.sharedDirectory = !cfg->uniqueDirPerTask;
      self->fs_.submitMeta(req, [this](const IoResult& r) {
        *lastEnd = std::max(*lastEnd, r.endTime);
        if (--remaining > 0) {
          next();
        } else {
          --*running;
        }
      });
    }
  };

  std::vector<std::unique_ptr<Proc>> procs;
  procs.reserve(cfg.totalProcs());
  for (std::uint32_t n = 0; n < cfg.nodes; ++n) {
    for (std::uint32_t p = 0; p < cfg.procsPerNode; ++p) {
      auto proc = std::make_unique<Proc>();
      proc->self = this;
      proc->cfg = &cfg;
      proc->client = ClientId{n, p};
      proc->op = op;
      proc->rank = static_cast<std::uint64_t>(n) * cfg.procsPerNode + p;
      proc->remaining = cfg.itemsPerProc;
      proc->lastEnd = &lastEnd;
      proc->running = &running;
      procs.push_back(std::move(proc));
    }
  }
  for (auto& proc : procs) proc->next();
  sim.run();
  if (running != 0) throw std::logic_error("MdtestRunner: phase drained with live processes");
  return lastEnd - start;
}

MdtestResult MdtestRunner::run(const MdtestConfig& cfg) {
  cfg.validate();
  if (cfg.nodes > bench_.nodesUsed()) {
    throw std::invalid_argument("MdtestRunner: config uses more nodes than the TestBench wired");
  }
  MdtestResult result;
  result.totalItems = cfg.totalItems();
  Rng noise(cfg.seed);

  std::vector<double> create, stat, remove;
  for (std::size_t rep = 0; rep < cfg.repetitions; ++rep) {
    for (MetaOp op : {MetaOp::Create, MetaOp::Stat, MetaOp::Remove}) {
      Seconds elapsed = runPhase(cfg, op);
      if (cfg.noiseStdDevFrac > 0.0 && cfg.repetitions > 1) {
        elapsed *= noise.normalAtLeast(1.0, cfg.noiseStdDevFrac, 0.2);
      }
      const double ops = static_cast<double>(cfg.totalItems()) / elapsed;
      (op == MetaOp::Create ? create : op == MetaOp::Stat ? stat : remove).push_back(ops);
    }
  }
  result.createOpsPerSec = summarize(create);
  result.statOpsPerSec = summarize(stat);
  result.removeOpsPerSec = summarize(remove);
  return result;
}

}  // namespace hcsim
