file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_frontend.dir/bench_ablation_frontend.cpp.o"
  "CMakeFiles/bench_ablation_frontend.dir/bench_ablation_frontend.cpp.o.d"
  "bench_ablation_frontend"
  "bench_ablation_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
