#include "fs/model_support.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "fs/file_system_model.hpp"

namespace hcsim {

const char* toString(MetaOp op) {
  switch (op) {
    case MetaOp::Create: return "create";
    case MetaOp::Stat: return "stat";
    case MetaOp::Open: return "open";
    case MetaOp::Close: return "close";
    case MetaOp::Remove: return "remove";
  }
  return "?";
}

const char* toString(FaultAction a) {
  switch (a) {
    case FaultAction::Fail: return "fail";
    case FaultAction::FailSlow: return "fail-slow";
    case FaultAction::Restore: return "restore";
  }
  return "?";
}

Bandwidth overheadAdjustedCap(Bandwidth streamCap, Seconds perOpOverhead, Bytes reqSize) {
  if (reqSize == 0) throw std::invalid_argument("overheadAdjustedCap: reqSize must be > 0");
  if (perOpOverhead <= 0.0) return streamCap;
  const double deadTimePerByte = perOpOverhead / static_cast<double>(reqSize);
  if (!std::isfinite(streamCap) || streamCap <= 0.0) {
    return streamCap <= 0.0 ? 0.0 : 1.0 / deadTimePerByte;
  }
  return 1.0 / (1.0 / streamCap + deadTimePerByte);
}

std::function<void()> completionBarrier(std::size_t count, std::function<void()> done) {
  if (count == 0) {
    if (done) done();
    return [] {};
  }
  auto remaining = std::make_shared<std::size_t>(count);
  return [remaining, done = std::move(done)]() {
    if (*remaining == 0) return;  // over-signalled; ignore
    if (--*remaining == 0 && done) done();
  };
}

}  // namespace hcsim
