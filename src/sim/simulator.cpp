#include "sim/simulator.hpp"

#include <utility>

namespace hcsim {

EventId Simulator::scheduleAt(SimTime t, std::function<void()> fn) {
  if (t < now_) t = now_;
  const std::uint64_t seq = nextSeq_++;
  heap_.push(Entry{t, seq, std::move(fn)});
  pending_.insert(seq);
  return EventId{seq};
}

bool Simulator::cancel(EventId id) {
  if (!id.valid()) return false;
  // Lazy deletion: drop the seq from the pending set; the heap entry is
  // skipped when it reaches the top.
  return pending_.erase(id.value) > 0;
}

bool Simulator::popNext(Entry& out) {
  while (!heap_.empty()) {
    // priority_queue::top() is const; moving out before pop() is the
    // standard idiom for heaps of callable payloads.
    Entry& top = const_cast<Entry&>(heap_.top());
    const auto it = pending_.find(top.seq);
    if (it == pending_.end()) {
      heap_.pop();  // cancelled — discard
      continue;
    }
    pending_.erase(it);
    out = std::move(top);
    heap_.pop();
    return true;
  }
  return false;
}

bool Simulator::step() {
  Entry e;
  if (!popNext(e)) return false;
  now_ = e.time;
  ++dispatched_;
  e.fn();
  return true;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::runUntil(SimTime t) {
  for (;;) {
    Entry e;
    if (!popNext(e)) break;
    if (e.time > t) {
      // Next event is beyond the horizon — reinstate it and stop.
      pending_.insert(e.seq);
      heap_.push(std::move(e));
      break;
    }
    now_ = e.time;
    ++dispatched_;
    e.fn();
  }
  if (now_ < t) now_ = t;
}

}  // namespace hcsim
