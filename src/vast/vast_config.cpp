#include "vast/vast_config.hpp"

#include <stdexcept>

namespace hcsim {

const char* toString(NfsTransport t) {
  switch (t) {
    case NfsTransport::Tcp: return "NFS/TCP";
    case NfsTransport::Rdma: return "NFS/RDMA";
  }
  return "?";
}

void VastConfig::validate() const {
  if (cnodes == 0) throw std::invalid_argument("VastConfig: cnodes must be > 0");
  if (dboxes == 0) throw std::invalid_argument("VastConfig: dboxes must be > 0");
  if (dnodesPerBox == 0) throw std::invalid_argument("VastConfig: dnodesPerBox must be > 0");
  if (qlcPerBox == 0) throw std::invalid_argument("VastConfig: qlcPerBox must be > 0");
  if (scmPerBox == 0) throw std::invalid_argument("VastConfig: scmPerBox must be > 0");
  if (dataReductionRatio < 0.0 || dataReductionRatio >= 1.0) {
    throw std::invalid_argument("VastConfig: dataReductionRatio must be in [0,1)");
  }
  if (defaultReadCacheHitRatio < 0.0 || defaultReadCacheHitRatio > 1.0) {
    throw std::invalid_argument("VastConfig: defaultReadCacheHitRatio must be in [0,1]");
  }
  if (transport == NfsTransport::Tcp && !gateway.present) {
    throw std::invalid_argument("VastConfig: TCP transport requires a gateway pool");
  }
  if (gateway.present && (gateway.nodes == 0 || gateway.linksPerNode == 0 ||
                          gateway.linkBandwidth <= 0.0)) {
    throw std::invalid_argument("VastConfig: gateway pool is present but unsized");
  }
  if (sessionCap() <= 0.0) throw std::invalid_argument("VastConfig: session cap must be > 0");
}

VastConfig VastConfig::lcInstance() {
  VastConfig c;
  c.name = "VAST-LC";
  c.cnodes = 16;
  c.dboxes = 5;
  c.dnodesPerBox = 2;
  c.qlcPerBox = 22;
  c.scmPerBox = 6;
  c.transport = NfsTransport::Tcp;
  c.nconnect = 1;
  c.multipath = false;
  // EDR InfiniBand internal fabric with NVMe-oF (paper §IV-B).
  c.fabricLinksPerBox = 2;
  c.fabricLinkBandwidth = units::gbps(100);
  // Gateway must be filled in per machine (Lassen/Ruby/Quartz differ).
  c.gateway.present = true;
  c.gateway.nodes = 1;
  c.gateway.linksPerNode = 2;
  c.gateway.linkBandwidth = units::gbps(100);
  // Modest DNode cache benefit on LC (shared, busy system).
  c.dnodeCacheBytes = 2 * units::TB;
  return c;
}

VastConfig VastConfig::wombatInstance() {
  VastConfig c;
  c.name = "VAST-Wombat";
  c.cnodes = 8;
  c.dboxes = 4;  // 8 BlueField-DPU DNodes in 4 HA pairs
  c.dnodesPerBox = 2;
  c.qlcPerBox = 11;  // "11 SSDs ... hosted by a pair of DPUs"
  c.scmPerBox = 4;   // "four NVRAMs"
  c.transport = NfsTransport::Rdma;
  c.nconnect = 16;  // "deployed using RDMA with nconnect=16 and multipathing"
  c.multipath = true;
  c.gateway.present = false;  // RoCE directly over the cluster fabric
  // "CBoxes and DBoxes are connected via 2x50Gbps Ethernet links" (per
  // HA pair) through NVMe-oF / RoCE.
  c.fabricLinksPerBox = 2;
  c.fabricLinkBandwidth = units::gbps(50);
  c.fabricLatency = units::usec(8);
  // Four NVRAM devices per pair give a large, fast read cache.
  c.dnodeCacheBytes = 4ull * 4ull * (units::TB / 2);  // 4 boxes x 4 x 0.5 TB
  c.qlcCapacityEach = 15 * units::TB;
  return c;
}

}  // namespace hcsim
