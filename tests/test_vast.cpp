#include "vast/vast_model.hpp"

#include <gtest/gtest.h>

#include "cluster/deployments.hpp"

namespace hcsim {
namespace {

PhaseSpec phase(AccessPattern p, Bytes ws = 0, std::uint32_t nodes = 1,
                std::uint32_t ppn = 1) {
  PhaseSpec ph;
  ph.pattern = p;
  ph.requestSize = units::MiB;
  ph.nodes = nodes;
  ph.procsPerNode = ppn;
  ph.workingSetBytes = ws;
  return ph;
}

Seconds runOne(TestBench& bench, FileSystemModel& fs, const IoRequest& req) {
  SimTime end = -1;
  fs.submit(req, [&](const IoResult& r) { end = r.endTime; });
  bench.sim().run();
  return end;
}

TEST(VastConfig, ValidateRejectsBadValues) {
  VastConfig c = VastConfig::wombatInstance();
  c.cnodes = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = VastConfig::wombatInstance();
  c.dataReductionRatio = 1.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = VastConfig::wombatInstance();
  c.transport = NfsTransport::Tcp;
  c.gateway.present = false;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = vastOnLassen();
  c.gateway.linkBandwidth = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(VastConfig, PresetsMatchPaperInventory) {
  const VastConfig lc = VastConfig::lcInstance();
  EXPECT_EQ(lc.cnodes, 16u);
  EXPECT_EQ(lc.dboxes, 5u);
  EXPECT_EQ(lc.dnodesPerBox, 2u);  // "ten DNodes and 16 CNodes"
  EXPECT_EQ(lc.qlcPerBox, 22u);
  EXPECT_EQ(lc.scmPerBox, 6u);
  EXPECT_EQ(lc.transport, NfsTransport::Tcp);

  const VastConfig w = VastConfig::wombatInstance();
  EXPECT_EQ(w.cnodes, 8u);
  EXPECT_EQ(w.dboxes * w.dnodesPerBox, 8u);  // eight BlueField DNodes
  EXPECT_EQ(w.transport, NfsTransport::Rdma);
  EXPECT_EQ(w.nconnect, 16u);  // "nconnect=16 and multipathing"
  EXPECT_TRUE(w.multipath);
  EXPECT_FALSE(w.gateway.present);
}

TEST(VastConfig, LcCapacityIsRoughly5PB) {
  // Paper: "total capacity of 5.2 PB".
  const double pb = static_cast<double>(VastConfig::lcInstance().totalCapacity()) /
                    static_cast<double>(units::PB);
  EXPECT_GT(pb, 4.0);
  EXPECT_LT(pb, 6.5);
}

TEST(VastConfig, SessionHelpers) {
  VastConfig c = VastConfig::wombatInstance();
  EXPECT_EQ(c.sessionsPerClient(), 16u);
  c.nconnect = 0;
  EXPECT_EQ(c.sessionsPerClient(), 1u);
  EXPECT_DOUBLE_EQ(c.sessionCap(), c.rdmaSessionCap);
  c.transport = NfsTransport::Tcp;
  EXPECT_DOUBLE_EQ(c.sessionCap(), c.tcpSessionCap);
  EXPECT_DOUBLE_EQ(c.rpcLatency(), c.tcpRpcLatency);
}

TEST(VastConfig, TransportToString) {
  EXPECT_STREQ(toString(NfsTransport::Tcp), "NFS/TCP");
  EXPECT_STREQ(toString(NfsTransport::Rdma), "NFS/RDMA");
}

TEST(VastModel, PhaseSetsPatternDependentCapacities) {
  TestBench bench(Machine::wombat(), 1);
  auto fs = bench.attachVast(vastOnWombat());
  fs->beginPhase(phase(AccessPattern::SequentialWrite));
  const Bandwidth writeCap = fs->deviceWriteCapacity();
  EXPECT_GT(writeCap, 0.0);
  fs->endPhase();
  fs->beginPhase(phase(AccessPattern::SequentialRead));
  EXPECT_GT(fs->deviceReadCapacity(), writeCap);  // QLC reads beat SCM writes
}

TEST(VastModel, ReadCacheHitRatioFromWorkingSet) {
  TestBench bench(Machine::wombat(), 1);
  VastConfig cfg = vastOnWombat();
  cfg.dnodeCacheBytes = units::GiB;
  auto fs = bench.attachVast(cfg);
  fs->beginPhase(phase(AccessPattern::SequentialRead, 4 * units::GiB));
  EXPECT_NEAR(fs->phaseReadCacheHitRatio(), 0.25, 1e-9);
  fs->endPhase();
  fs->beginPhase(phase(AccessPattern::SequentialRead, units::GiB / 2));
  EXPECT_DOUBLE_EQ(fs->phaseReadCacheHitRatio(), 1.0);
  fs->endPhase();
  fs->beginPhase(phase(AccessPattern::SequentialWrite, units::GiB));
  EXPECT_DOUBLE_EQ(fs->phaseReadCacheHitRatio(), 0.0);  // writes never "hit"
}

TEST(VastModel, WritesAccumulateInScm) {
  TestBench bench(Machine::wombat(), 1);
  auto fs = bench.attachVast(vastOnWombat());
  fs->beginPhase(phase(AccessPattern::SequentialWrite));
  IoRequest req;
  req.client = {0, 0};
  req.fileId = 1;
  req.bytes = units::GiB;
  req.pattern = AccessPattern::SequentialWrite;
  fs->submit(req, nullptr);
  // Dirty immediately after the burst lands; the background migration
  // then drains it to QLC by the time the simulation settles.
  EXPECT_GT(fs->scmDirtyBytes(), 0u);
  bench.sim().runUntil(bench.sim().now() + 3600.0);
  EXPECT_EQ(fs->scmDirtyBytes(), 0u);
}

TEST(VastModel, TcpSessionCapThrottlesSingleClient) {
  TestBench bench(Machine::lassen(), 1);
  auto fs = bench.attachVast(vastOnLassen());
  fs->beginPhase(phase(AccessPattern::SequentialWrite, 0, 1, 4));
  IoRequest req;
  req.client = {0, 0};
  req.fileId = 1;
  req.bytes = units::GiB;
  req.pattern = AccessPattern::SequentialWrite;
  req.ops = 1024;
  req.streams = 4;
  const Seconds t = runOne(bench, *fs, req);
  const Bandwidth bw = static_cast<double>(req.bytes) / t;
  // One NFS/TCP session: must land at or below the session cap.
  EXPECT_LE(bw, vastOnLassen().tcpSessionCap * 1.01);
  EXPECT_GT(bw, vastOnLassen().tcpSessionCap * 0.5);
}

TEST(VastModel, RdmaNconnectBeatsSingleSession) {
  const auto run = [](std::size_t nconnect) {
    TestBench bench(Machine::wombat(), 1);
    VastConfig cfg = vastOnWombat();
    cfg.name = "VAST-nc" + std::to_string(nconnect);
    cfg.nconnect = nconnect;
    auto fs = bench.attachVast(cfg);
    PhaseSpec ph = phase(AccessPattern::SequentialWrite, 0, 1, 16);
    fs->beginPhase(ph);
    SimTime last = 0;
    int outstanding = 0;
    for (std::uint32_t p = 0; p < 16; ++p) {
      IoRequest req;
      req.client = {0, p};
      req.fileId = p + 1;
      req.bytes = 256 * units::MiB;
      req.pattern = AccessPattern::SequentialWrite;
      req.ops = 256;
      ++outstanding;
      fs->submit(req, [&](const IoResult& r) {
        last = std::max(last, r.endTime);
        --outstanding;
      });
    }
    bench.sim().run();
    EXPECT_EQ(outstanding, 0);
    return 16.0 * 256.0 * static_cast<double>(units::MiB) / last;
  };
  EXPECT_GT(run(16), 2.0 * run(1));
}

TEST(VastModel, GatewayPipeLimitsTcpAggregate) {
  // Many Lassen nodes behind ONE gateway: aggregate pinned to the pipe.
  TestBench bench(Machine::lassen(), 8);
  auto fs = bench.attachVast(vastOnLassen());
  fs->beginPhase(phase(AccessPattern::SequentialWrite, 0, 8, 4));
  SimTime last = 0;
  for (std::uint32_t n = 0; n < 8; ++n) {
    IoRequest req;
    req.client = {n, 0};
    req.fileId = n + 1;
    req.bytes = units::GiB;
    req.pattern = AccessPattern::SequentialWrite;
    req.ops = 1024;
    req.streams = 4;
    fs->submit(req, [&](const IoResult& r) { last = std::max(last, r.endTime); });
  }
  bench.sim().run();
  const Bandwidth agg = 8.0 * static_cast<double>(units::GiB) / last;
  EXPECT_LE(agg, vastOnLassen().tcpGatewayPipeCap * 1.01);
}

TEST(VastModel, FsyncWritesSlowerThanAsyncWrites) {
  const auto run = [](bool fsync) {
    TestBench bench(Machine::wombat(), 1);
    VastConfig cfg = vastOnWombat();
    cfg.name = fsync ? "VAST-sync" : "VAST-async";
    auto fs = bench.attachVast(cfg);
    PhaseSpec ph = phase(AccessPattern::SequentialWrite);
    ph.fsync = fsync;
    fs->beginPhase(ph);
    SimTime last = 0;
    int remaining = 64;
    std::function<void()> next = [&] {
      IoRequest req;
      req.client = {0, 0};
      req.fileId = 1;
      req.bytes = units::MiB;
      req.pattern = AccessPattern::SequentialWrite;
      req.fsync = fsync;
      fs->submit(req, [&](const IoResult& r) {
        last = r.endTime;
        if (--remaining > 0) next();
      });
    };
    next();
    bench.sim().run();
    return last;
  };
  EXPECT_GT(run(true), 1.5 * run(false));
}

TEST(VastModel, ZeroByteRequestIsMetadataRpc) {
  TestBench bench(Machine::wombat(), 1);
  auto fs = bench.attachVast(vastOnWombat());
  fs->beginPhase(phase(AccessPattern::SequentialRead));
  IoRequest req;
  req.client = {0, 0};
  req.bytes = 0;
  const Seconds t = runOne(bench, *fs, req);
  EXPECT_NEAR(t, vastOnWombat().rdmaRpcLatency, 1e-9);
}

TEST(VastModel, ClientParallelismReportsNconnect) {
  TestBench bench(Machine::wombat(), 1);
  auto fs = bench.attachVast(vastOnWombat());
  EXPECT_EQ(fs->clientParallelism(), 16u);
}

TEST(VastModel, TotalCapacityMatchesConfig) {
  TestBench bench(Machine::wombat(), 1);
  auto fs = bench.attachVast(vastOnWombat());
  EXPECT_EQ(fs->totalCapacity(), vastOnWombat().totalCapacity());
}

TEST(VastModel, ReadSplitConservesBytes) {
  TestBench bench(Machine::wombat(), 1);
  VastConfig cfg = vastOnWombat();
  cfg.dnodeCacheBytes = units::GiB;  // partial hit ratio
  auto fs = bench.attachVast(cfg);
  fs->beginPhase(phase(AccessPattern::SequentialRead, 3 * units::GiB));
  IoRequest req;
  req.client = {0, 0};
  req.fileId = 1;
  req.bytes = 128 * units::MiB;
  req.pattern = AccessPattern::SequentialRead;
  req.ops = 128;
  Bytes got = 0;
  fs->submit(req, [&](const IoResult& r) { got = r.bytes; });
  bench.sim().run();
  EXPECT_EQ(got, req.bytes);
}

}  // namespace
}  // namespace hcsim
