# Empty compiler generated dependencies file for compare_storage.
# This may be replaced when dependencies are built.
