#pragma once
// Rotating-disk RAID model — the backend of GPFS (NSD HDD RAID) and
// Lustre (80-disk SAS HDD raidz2 groups per OSS).
//
// The single behaviour that matters for the paper is the seek penalty:
// GPFS on Lassen serves ~14.5 GB/s/node for *sequential* reads but only
// ~1.4 GB/s for *random* reads — a 90% drop caused by cache thrash plus
// HDD seeks. The model: each spindle streams at `streamBandwidth`, and a
// random request additionally pays `seekTime`, so the effective per-
// spindle rate is reqSize / (seek + reqSize/stream).

#include <cstddef>
#include <string>

#include "device/ssd.hpp"  // AccessPattern
#include "util/units.hpp"

namespace hcsim {

struct HddSpec {
  std::string name;
  Bandwidth streamBandwidth = 0.0;  ///< sustained sequential, bytes/s
  Seconds seekTime = 0.0;           ///< average seek + rotational latency

  /// 7.2k RPM nearline SAS drive (the Lustre/GPFS capacity tier).
  static HddSpec nearlineSas();
};

/// A RAID group of `spindles` identical drives. `parityOverhead` derates
/// writes (RAID6/raidz2 read-modify-write); reads are served from data
/// disks at full aggregate streaming rate.
class HddRaid {
 public:
  HddRaid(HddSpec spec, std::size_t spindles, double parityOverhead = 0.15);

  const HddSpec& spec() const { return spec_; }
  std::size_t spindles() const { return spindles_; }

  /// Aggregate effective bandwidth for a homogeneous access phase.
  Bandwidth effectiveBandwidth(AccessPattern pattern, Bytes requestSize) const;

  /// Per-request latency (seek applies to random; sequential streams).
  Seconds requestLatency(AccessPattern pattern) const;

 private:
  HddSpec spec_;
  std::size_t spindles_;
  double parityOverhead_;
};

}  // namespace hcsim
