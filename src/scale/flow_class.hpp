#pragma once
// hcsim::scale — flow-class aggregation support (million-client scale).
//
// A *flow class* is the unit of aggregation threaded through the whole
// stack: one FlowSpec/IoRequest with `members = N` stands for N
// statistically identical clients sharing a route. The flow solver
// (net/flow_network) treats the class as one group claiming N fair
// shares, the storage models scale their side effects (page-cache
// absorption, background bytes) by N, and the workload runner bills ops
// and retries once per class while counting members in the aggregate
// totals. This header holds the pieces that are *about* the aggregation
// itself rather than any one layer:
//
//  * deterministic per-member demand multipliers (lognormal / Zipf),
//    used to split a heterogeneous population into classes whose mean
//    demand is exactly the configured per-client demand;
//  * statistical demultiplexing — reconstructing per-client percentile
//    summaries from per-class observations weighted by member count,
//    with percentiles *exactly* equal to those of the expanded
//    per-client sample vector (uniform weights reproduce
//    hcsim::summarize byte-for-byte);
//  * the `scale.*` telemetry gauges.
//
// ## Equivalence contract (pinned by tests/test_scale.cpp)
//
// A class of N unit-weight members is *exactly* — bitwise — equivalent
// to N explicit symmetric clients whenever the model path is
// deterministic (every Lustre/NVMe request; VAST/GPFS requests whose
// phase hit ratio is degenerate 0 or 1, or whose `ops > 1` mixture path
// applies). Paths that consume per-request RNG draws (single-op VAST/
// GPFS cache hits) stay exact for `members <= 1` and switch to the
// deterministic expected-value split for classes, so aggregation is
// statistically — not sample-for-sample — equivalent there. See
// docs/SCALE.md.

#include <cstdint>
#include <vector>

#include "util/stats.hpp"

namespace hcsim::telemetry {
class MetricsRegistry;
}

namespace hcsim::scale {

/// How per-client demand varies across the members of a population.
enum class DemandKind {
  Uniform,    ///< every client demands the configured mean
  Lognormal,  ///< multiplicative spread (sigma in log space)
  Zipf,       ///< rank-ordered heavy tail (weight of rank r ~ r^-theta)
};

/// A deterministic demand-heterogeneity model. The multipliers it
/// produces always average to exactly 1 (up to rounding), so the
/// population's aggregate demand is invariant to the distribution — the
/// shape only redistributes it across members.
struct DemandModel {
  DemandKind kind = DemandKind::Uniform;
  double sigma = 0.0;  ///< Lognormal: stddev of log-demand (>= 0)
  double theta = 0.0;  ///< Zipf: skew exponent (>= 0; 0 = uniform)

  /// Throws std::invalid_argument on negative parameters.
  void validate() const;
};

/// Inverse standard-normal CDF (Acklam's rational approximation,
/// |relative error| < 1.2e-9 on (0, 1)). Used to place the i-th of n
/// members at the mid-quantile (i + 0.5) / n of the demand distribution
/// instead of sampling it, which keeps classes deterministic.
double normalQuantile(double p);

/// Per-member demand multipliers for a population of `n`, sorted
/// ascending, normalized so their mean is exactly 1. Uniform returns
/// all-ones (bitwise: the 1.0 literal), so a degenerate model is a
/// no-op multiplier.
std::vector<double> demandMultipliers(const DemandModel& model, std::size_t n);

/// One observed value standing for `count` identical per-client samples
/// (e.g. a class's per-member latency with its member count).
struct WeightedSample {
  double value = 0.0;
  std::uint64_t count = 1;
};

/// Percentile of the *expanded* multiset (each value repeated `count`
/// times) without expanding it: exactly percentileSorted() of the
/// expansion, computed in O(k). `samples` must be sorted by value;
/// q in [0, 100].
double weightedPercentile(const std::vector<WeightedSample>& samples, double q);

/// Reconstruct a per-client Summary from per-class observations: count/
/// min/max/mean/stddev are the exact moments of the expanded multiset,
/// p50/p95/p99 come from weightedPercentile. With every count == 1 the
/// percentiles match hcsim::summarize byte-for-byte (same interpolation
/// on the same sorted vector). `samples` need not be sorted.
Summary demultiplex(std::vector<WeightedSample> samples);

/// Aggregation shape of a run, exported as `scale.*` gauges.
struct ClassStats {
  std::uint64_t classes = 0;       ///< flow classes (op streams) driven
  std::uint64_t clientsTotal = 0;  ///< sum of member counts

  double clientsPerClass() const {
    return classes > 0 ? static_cast<double>(clientsTotal) / static_cast<double>(classes) : 0.0;
  }
};

/// Emit `scale.classes`, `scale.clientsPerClass`, `scale.clientsTotal`.
void exportTo(const ClassStats& stats, telemetry::MetricsRegistry& reg);

}  // namespace hcsim::scale
