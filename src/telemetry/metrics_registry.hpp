#pragma once
// MetricsRegistry — the collection point of hcsim::telemetry.
//
// Components do not push samples continuously; they are *collected*: at
// report time every backend component writes a snapshot of its named
// counters (monotonic totals: events scheduled, bytes carried, cache
// hits), gauges (instantaneous values: queue depth, SCM occupancy, link
// capacity) and histograms (latency/size distributions, reusing
// util/histogram) into one registry. Collection is pull-based so the
// simulation hot paths carry no instrumentation cost — see
// docs/TELEMETRY.md for the naming scheme ("engine.", "net.",
// "<model>.", "telemetry." prefixes).

#include <map>
#include <string>

#include "util/histogram.hpp"
#include "util/json.hpp"

namespace hcsim::telemetry {

class MetricsRegistry {
 public:
  /// Record a monotonic total (overwrites a previous snapshot).
  void counter(const std::string& name, double value) { counters_[name] = value; }

  /// Record an instantaneous value (overwrites a previous snapshot).
  void gauge(const std::string& name, double value) { gauges_[name] = value; }

  /// Get-or-create a named histogram. The bounds/bins of the first call
  /// win; later calls with the same name return the existing histogram.
  Histogram& histogram(const std::string& name, double minValue, double maxValue,
                       std::size_t bins);

  const Histogram* findHistogram(const std::string& name) const;

  double counterOr(const std::string& name, double fallback) const;
  double gaugeOr(const std::string& name, double fallback) const;
  bool hasCounter(const std::string& name) const { return counters_.count(name) > 0; }

  /// Sorted by name (std::map), so iteration — and every rendering —
  /// is deterministic.
  const std::map<std::string, double>& counters() const { return counters_; }
  const std::map<std::string, double>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const { return histograms_; }

  std::size_t size() const { return counters_.size() + gauges_.size() + histograms_.size(); }
  bool empty() const { return size() == 0; }
  void clear();

  /// {"counters":{...},"gauges":{...},"histograms":{name:{"count":N,
  /// "p50":...,"p99":...}}} — keys sorted, numbers lossless.
  JsonValue toJson() const;

  /// Human-readable listing for `hcsim stats`: one metric per line,
  /// grouped counters/gauges/histograms.
  std::string renderTable() const;

 private:
  std::map<std::string, double> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace hcsim::telemetry
