file(REMOVE_RECURSE
  "CMakeFiles/bench_burstbuffer.dir/bench_burstbuffer.cpp.o"
  "CMakeFiles/bench_burstbuffer.dir/bench_burstbuffer.cpp.o.d"
  "bench_burstbuffer"
  "bench_burstbuffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_burstbuffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
