#pragma once
// DlioSource — the DLIO training-loop emulation expressed as a
// WorkloadSource. Each rank is a bounded-prefetch input pipeline
// (ioThreads concurrent batch fetches feeding a prefetch window) plus an
// in-order trainer with optional synchronous checkpoints; all of that
// pipeline logic lives in next()/onComplete() while the generic
// WorkloadRunner owns submission, tracing and completion plumbing. The
// op stream is bit-for-bit what the pre-refactor DlioRunner submitted.

#include <map>
#include <vector>

#include "dlio/dlio_config.hpp"
#include "util/random.hpp"
#include "workload/workload_source.hpp"

namespace hcsim::workload {

class DlioSource : public WorkloadSource {
 public:
  explicit DlioSource(const DlioConfig& cfg) : cfg_(cfg) {}

  const std::string& name() const override { return name_; }
  WorkloadPlan load(const WorkloadContext& ctx) override;
  NextStatus next(std::size_t rank, WorkloadOp& out) override;
  void onComplete(std::size_t rank, const WorkloadOp& op, const IoResult& result) override;

  /// Batches the trainers consumed (summed over ranks), for DlioResult.
  std::size_t batchesTrained() const;

 private:
  struct RankState {
    std::uint32_t pid = 0;
    ClientId client{};
    std::uint64_t fileBase = 0;

    std::size_t nextFetch = 0;
    std::size_t nextTrain = 0;
    std::size_t inFlight = 0;
    bool trainerBusy = false;
    bool checkpointDue = false;
    bool done = false;
    std::vector<bool> ready;
    /// Outstanding sample reads per in-flight batch.
    std::map<std::size_t, std::size_t> remaining;
    /// Current batch being emitted (sample ops still to hand out).
    std::size_t emitBatch = 0;
    std::size_t emitSample = 0;
    std::size_t emitCount = 0;
    Rng rng;
    std::size_t batchesTrained = 0;
  };

  std::size_t window() const;
  void sampleOp(RankState& st, WorkloadOp& out);

  std::string name_ = "dlio";
  DlioConfig cfg_;
  std::vector<RankState> ranks_;
  std::size_t samplesPerRank_ = 0;
  std::size_t totalBatches_ = 0;
};

}  // namespace hcsim::workload
