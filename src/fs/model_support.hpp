#pragma once
// Shared helpers for storage-system model implementations.

#include <functional>
#include <memory>

#include "util/units.hpp"

namespace hcsim {

/// Effective per-stream rate when every `reqSize`-byte operation pays a
/// fixed `perOpOverhead` of dead time (RPC round trip, fsync commit,
/// device latency): the harmonic composition
///
///   rate = 1 / (1/streamCap + perOpOverhead/reqSize)
///
/// ->  streamCap for large requests, reqSize/perOpOverhead for tiny ones.
Bandwidth overheadAdjustedCap(Bandwidth streamCap, Seconds perOpOverhead, Bytes reqSize);

/// Returns a callable that invokes `done` exactly once, after being
/// called `count` times. With count == 0, `done` runs immediately.
std::function<void()> completionBarrier(std::size_t count, std::function<void()> done);

}  // namespace hcsim
