#include "oracle/generator.hpp"

#include <cmath>
#include <stdexcept>

#include "config/paths.hpp"
#include "config/serialize.hpp"
#include "sweep/sweep_spec.hpp"
#include "util/random.hpp"

namespace hcsim::oracle {

const char* siteName(Site s) {
  switch (s) {
    case Site::Lassen: return "lassen";
    case Site::Ruby: return "ruby";
    case Site::Quartz: return "quartz";
    case Site::Wombat: return "wombat";
  }
  return "?";
}

const char* storageName(StorageKind k) {
  switch (k) {
    case StorageKind::Vast: return "vast";
    case StorageKind::Gpfs: return "gpfs";
    case StorageKind::Lustre: return "lustre";
    case StorageKind::NvmeLocal: return "nvme";
  }
  return "?";
}

JsonValue presetJson(Site site, StorageKind kind) {
  switch (kind) {
    case StorageKind::Vast:
      return toJson(site == Site::Lassen   ? vastOnLassen()
                    : site == Site::Ruby   ? vastOnRuby()
                    : site == Site::Quartz ? vastOnQuartz()
                                           : vastOnWombat());
    case StorageKind::Gpfs: return toJson(gpfsOnLassen());
    case StorageKind::Lustre:
      return toJson(site == Site::Ruby ? lustreOnRuby() : lustreOnQuartz());
    case StorageKind::NvmeLocal: return toJson(nvmeOnWombat());
  }
  return JsonValue();
}

std::vector<Knob> defaultKnobs(StorageKind kind) {
  switch (kind) {
    case StorageKind::Vast:
      return {{"cnodes", 0.75, 1.5, true},
              {"nconnect", 0.5, 1.5, true},
              {"rdmaSessionCap", 0.75, 1.5, false},
              {"tcpSessionCap", 0.75, 1.5, false},
              {"fabricLinkBandwidth", 0.75, 1.5, false}};
    case StorageKind::Gpfs:
      return {{"nsdServers", 0.5, 2.0, true},
              {"serverReadBandwidth", 0.75, 1.5, false},
              {"serverWriteBandwidth", 0.75, 1.5, false},
              {"serverCacheBytes", 0.5, 2.0, false},
              {"spindlesPerServer", 0.75, 1.5, true}};
    case StorageKind::Lustre:
      return {{"ossCount", 0.5, 1.5, true},
              {"ossBandwidth", 0.75, 1.5, false},
              {"spindlesPerOss", 0.75, 1.25, true},
              {"mdsCount", 0.5, 2.0, true},
              {"clientCap", 0.75, 1.25, false}};
    case StorageKind::NvmeLocal:
      return {{"drivesPerNode", 0.5, 2.0, true},
              {"memoryBandwidth", 0.75, 1.5, false},
              {"dirtyLimitBytes", 0.5, 2.0, false}};
  }
  return {};
}

ConfigGenerator::ConfigGenerator(Site site, StorageKind kind, std::vector<Knob> knobs)
    : site_(site), kind_(kind), knobs_(std::move(knobs)), preset_(presetJson(site, kind)) {
  for (const Knob& k : knobs_) {
    if (!hasNumericPath(preset_, k.path)) {
      throw std::logic_error("oracle: knob '" + k.path + "' is not a numeric path of the " +
                             std::string(storageName(kind)) + " serialization");
    }
  }
}

JsonValue ConfigGenerator::makeBase(std::uint64_t seed, AccessPattern access) const {
  Rng rng(seed * 0x9e3779b97f4a7c15ull + static_cast<std::uint64_t>(kind_) * 131 +
          static_cast<std::uint64_t>(site_) * 17 + 1);

  JsonObject ior;
  ior["access"] = toJson(access);
  static const std::size_t nodeChoices[] = {1, 2, 4};
  static const std::size_t ppnChoices[] = {8, 16, 32};
  ior["nodes"] = static_cast<double>(nodeChoices[rng.uniformInt(3)]);
  ior["procsPerNode"] = static_cast<double>(ppnChoices[rng.uniformInt(3)]);
  ior["segments"] = static_cast<double>(1000 + rng.uniformInt(2001));  // ~1-3 GiB per proc
  ior["repetitions"] = 1;
  ior["noiseStdDevFrac"] = 0.0;
  ior["seed"] = static_cast<double>(rng.next() >> 16);

  JsonValue storageConfig(JsonObject{});
  for (const Knob& k : knobs_) {
    if (rng.uniform() >= 0.5) continue;
    double v = numberAtPath(preset_, k.path, 0.0) * rng.uniform(k.lo, k.hi);
    if (k.integer) v = std::max(1.0, std::floor(v + 0.5));
    sweep::jsonPathSet(storageConfig, k.path, JsonValue(v));
  }

  JsonObject base;
  base["site"] = std::string(siteName(site_));
  base["storage"] = std::string(storageName(kind_));
  base["ior"] = JsonValue(std::move(ior));
  base["storageConfig"] = storageConfig;
  return JsonValue(std::move(base));
}

}  // namespace hcsim::oracle
