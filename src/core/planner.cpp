#include "core/planner.hpp"

#include <algorithm>

#include "cluster/deployments.hpp"
#include "ior/ior_runner.hpp"

namespace hcsim {

namespace {

VastConfig materialize(const PlanSpace& space, std::size_t cnodes, NfsTransport transport,
                       std::size_t nconnect) {
  VastConfig cfg = space.base;
  cfg.name = "plan-" + std::to_string(cnodes) + "c-" +
             (transport == NfsTransport::Rdma ? "rdma" : "tcp") + "-nc" +
             std::to_string(nconnect);
  cfg.cnodes = cnodes;
  cfg.transport = transport;
  cfg.nconnect = nconnect;
  cfg.multipath = transport == NfsTransport::Rdma;
  if (transport == NfsTransport::Tcp) {
    cfg.gateway = space.tcpGateway;
    if (!cfg.gateway.present) {
      cfg.gateway.present = true;
      cfg.gateway.nodes = 2;
      cfg.gateway.linksPerNode = 2;
      cfg.gateway.linkBandwidth = units::gbps(100);
    }
  } else {
    cfg.gateway = GatewaySpec{};
  }
  return cfg;
}

}  // namespace

std::vector<PlanCandidate> planVastDeployment(const Machine& machine, const PlanGoal& goal,
                                              PlanSpace space) {
  std::vector<PlanCandidate> out;
  for (std::size_t cnodes : space.cnodeChoices) {
    for (NfsTransport transport : space.transports) {
      for (std::size_t nconnect : space.nconnectChoices) {
        if (transport == NfsTransport::Tcp && nconnect != space.nconnectChoices.front()) {
          continue;  // TCP mounts are single-session in the paper's setups
        }
        PlanCandidate cand;
        cand.config = materialize(space, cnodes, transport,
                                  transport == NfsTransport::Tcp ? 1 : nconnect);
        cand.config.validate();

        TestBench bench(machine, goal.nodes);
        auto fs = bench.attachVast(cand.config);
        IorRunner runner(bench, *fs);
        IorConfig ior = IorConfig::scalability(goal.pattern, goal.nodes, goal.procsPerNode);
        ior.segments = static_cast<std::size_t>(goal.probeBytesPerProc / ior.blockSize);
        if (ior.segments == 0) ior.segments = 1;
        const IorResult r = runner.run(ior);
        cand.measuredGBsPerNode =
            units::toGBs(r.bandwidth.mean) / static_cast<double>(goal.nodes);
        cand.meetsGoal = cand.measuredGBsPerNode >= goal.minGBsPerNode;
        out.push_back(std::move(cand));
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const PlanCandidate& a, const PlanCandidate& b) {
    if (a.meetsGoal != b.meetsGoal) return a.meetsGoal;
    if (a.meetsGoal) {
      if (a.costUnits() != b.costUnits()) return a.costUnits() < b.costUnits();
    }
    return a.measuredGBsPerNode > b.measuredGBsPerNode;
  });
  return out;
}

PlanCandidate bestVastDeployment(const Machine& machine, const PlanGoal& goal,
                                 PlanSpace space) {
  auto all = planVastDeployment(machine, goal, std::move(space));
  if (all.empty()) throw std::invalid_argument("planVastDeployment: empty search space");
  return all.front();
}

}  // namespace hcsim
