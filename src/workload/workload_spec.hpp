#pragma once
// Workload run specs — the JSON document the `hcsim workload` CLI and
// the sweep's "workload" experiment both consume:
//
//   {
//     "name": "...", "site": "lassen", "storage": "vast",
//     "storageConfig": {...},            // optional preset overrides
//     "workload": {"generator": "grammar", ...generator keys...},
//     "retry": true | {...},             // optional chaos retry layer
//     "chaos": {"events": [...]}         // optional fault schedule
//   }
//
// The "generator" key selects a WorkloadSource factory from the
// registry: the built-in runners (ior, dlio, replay) and the synthetic
// generators (io500, grammar, openloop) all hang off the same string, so
// a sweep axis can vary the generator like any other field. Validation
// never throws out of parsing — every problem becomes one actionable
// line, and the CLI prints them all at once.

#include <memory>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "fs/client_session.hpp"
#include "util/json.hpp"
#include "workload/workload_runner.hpp"
#include "workload/workload_source.hpp"

namespace hcsim::workload {

struct WorkloadRunSpec {
  std::string name = "workload";
  Site site = Site::Lassen;
  StorageKind storage = StorageKind::Vast;
  JsonValue storageConfig;  ///< null = site preset as-is
  std::string generator;
  JsonValue workload;  ///< the raw "workload" section (generator keys)
  bool retryEnabled = false;
  RetryPolicy retry;
  JsonValue chaos;  ///< raw "chaos" section, null = none
};

/// Names the registry knows, sorted, for error messages and docs.
std::vector<std::string> knownGenerators();

/// Parse the spec document. Appends one actionable line per problem to
/// `problems` (empty = valid). Generator-section validation happens in
/// makeSource — this checks the envelope.
void parseWorkloadSpec(const JsonValue& doc, WorkloadRunSpec& out,
                       std::vector<std::string>& problems);

/// Instantiate the spec's generator, validating its "workload" section.
/// On failure appends problem lines and returns {nullptr, 0}. `nodes` is
/// the compute-node count the environment must be built with.
struct SourceBundle {
  std::unique_ptr<WorkloadSource> source;
  std::size_t nodes = 0;
};
SourceBundle makeSource(const WorkloadRunSpec& spec, std::vector<std::string>& problems);

/// Schedule the spec's optional "chaos" section onto the environment
/// (parse + validate + scheduleFaults). Throws std::invalid_argument
/// with an actionable message on a bad section; no-op when absent.
void injectWorkloadChaos(const WorkloadRunSpec& spec, Environment& env);

/// Drive the source on the environment with the spec's retry settings.
WorkloadOutcome runWorkload(Environment& env, const WorkloadRunSpec& spec,
                            WorkloadSource& source, TraceLog* trace = nullptr);

/// JSONL: one "summary" record (opLatency is null — never zeros — when
/// no per-op distribution was collected), then one "sample" record per
/// goodput-timeline slice. Deterministic byte-for-byte across runs.
std::string toJsonl(const WorkloadOutcome& out);

/// CSV of the goodput timeline (header + one row per slice).
std::string toCsv(const WorkloadOutcome& out);

}  // namespace hcsim::workload
