#include "cli/commands.hpp"

#include <fstream>
#include <memory>
#include <ostream>

#include "chaos/chaos_runner.hpp"
#include "config/serialize.hpp"
#include "core/calibration.hpp"
#include "core/experiment.hpp"
#include "core/planner.hpp"
#include "core/takeaways.hpp"
#include "mdtest/mdtest.hpp"
#include "oracle/golden.hpp"
#include "oracle/relation.hpp"
#include "probe/flight_recorder.hpp"
#include "probe/monitor.hpp"
#include "scale/flow_class.hpp"
#include "sweep/result_sink.hpp"
#include "sweep/sweep_runner.hpp"
#include "sweep/trial_cache.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/telemetry.hpp"
#include "util/table.hpp"
#include "workload/openloop_source.hpp"
#include "workload/workload_spec.hpp"

namespace hcsim::cli {

namespace {

bool parseSite(const std::string& s, Site& out) {
  if (s == "lassen") out = Site::Lassen;
  else if (s == "ruby") out = Site::Ruby;
  else if (s == "quartz") out = Site::Quartz;
  else if (s == "wombat") out = Site::Wombat;
  else return false;
  return true;
}

bool parseStorage(const std::string& s, StorageKind& out) {
  if (s == "vast") out = StorageKind::Vast;
  else if (s == "gpfs") out = StorageKind::Gpfs;
  else if (s == "lustre") out = StorageKind::Lustre;
  else if (s == "nvme") out = StorageKind::NvmeLocal;
  else if (s == "daos") out = StorageKind::Daos;
  else return false;
  return true;
}

bool parsePattern(const std::string& s, AccessPattern& out) {
  return fromJson(JsonValue(s), out);
}

bool parseTarget(const ArgParser& args, std::ostream& err, Site& site, StorageKind& kind) {
  if (!parseSite(args.getOr("--site", ""), site)) {
    err << "error: --site must be one of lassen|ruby|quartz|wombat\n";
    return false;
  }
  if (!parseStorage(args.getOr("--storage", ""), kind)) {
    err << "error: --storage must be one of vast|gpfs|lustre|nvme|daos\n";
    return false;
  }
  return true;
}

/// Shared --cache plumbing: when the flag names a file, load it into a
/// TrialCache before the run and persist the merged contents after.
/// Cached metrics are bit-exact (the JSON writer round-trips doubles),
/// so results never depend on whether a cache was used.
class CacheSession {
 public:
  /// False (with a message on err) when the named file is malformed.
  bool open(const ArgParser& args, std::ostream& err) {
    const auto path = args.get("--cache");
    if (!path) return true;
    path_ = *path;
    cache_ = std::make_unique<sweep::TrialCache>();
    if (!cache_->loadFile(path_)) {
      err << "error: trial cache " << path_ << " is malformed (delete it to rebuild)\n";
      return false;
    }
    return true;
  }

  sweep::TrialCache* get() { return cache_.get(); }

  /// Persist; false (with a message) when the file cannot be written.
  bool close(std::ostream& err) {
    if (!cache_) return true;
    if (!cache_->saveFile(path_)) {
      err << "error: cannot write trial cache " << path_ << "\n";
      return false;
    }
    return true;
  }

 private:
  std::string path_;
  std::unique_ptr<sweep::TrialCache> cache_;
};

/// --dump-on-exit plumbing: write the bench's flight-recorder ring as
/// <prefix>.jsonl (one record per line) and <prefix>.trace.json
/// (chrome-trace instants, loadable in a trace viewer).
bool dumpRecorder(const probe::FlightRecorder& rec, const std::string& prefix,
                  std::ostream& out, std::ostream& err) {
  const std::string jsonlPath = prefix + ".jsonl";
  const std::string tracePath = prefix + ".trace.json";
  std::ofstream j(jsonlPath, std::ios::binary | std::ios::trunc);
  if (!j) {
    err << "error: cannot write " << jsonlPath << "\n";
    return false;
  }
  rec.dumpJsonl(j);
  std::ofstream t(tracePath, std::ios::binary | std::ios::trunc);
  if (!t) {
    err << "error: cannot write " << tracePath << "\n";
    return false;
  }
  rec.dumpChromeTrace(t);
  out << "dumped " << rec.size() << " flight-recorder record(s) to " << jsonlPath << " and "
      << tracePath << "\n";
  return true;
}

}  // namespace

int cmdHelp(std::ostream& out) {
  out << "hcsim — highly configurable storage simulator (CLUSTER'24 reproduction)\n\n"
         "usage: hcsim <command> [options]\n\n"
         "commands:\n"
         "  ior         --site S --storage K --access seq-write|seq-read|rand-read\n"
         "              [--nodes N] [--ppn P] [--segments S] [--fsync] [--per-op]\n"
         "              [--shared-file] [--reps R] [--stonewall SEC] [--config F.json]\n"
         "  dlio        --site S --storage K --workload resnet50|cosmoflow|unet3d\n"
         "              [--nodes N] [--ppn P] [--config F.json]\n"
         "  mdtest      --site S --storage K [--procs P] [--items N] [--unique-dir]\n"
         "  plan        --machine M --pattern A --min-gbs G [--nodes N] [--ppn P]\n"
         "  takeaways   run the paper's section-VII checks\n"
         "  sweep       --spec F.json [--jobs N] [--out results.jsonl] [--csv results.csv]\n"
         "              [--baseline prior.jsonl] [--cache trials.jsonl] [--telemetry]\n"
         "              [--self-profile]\n"
         "              (parallel what-if config sweep; --cache memoizes trials\n"
         "               across runs and reports the hit rate; --telemetry adds\n"
         "               engine/attribution columns without changing results;\n"
         "               --self-profile adds wall-clock self.* columns per trial\n"
         "               and bypasses the cache)\n"
         "  chaos       <scenario.json> [--out timeline.jsonl] [--csv timeline.csv]\n"
         "              [--telemetry] [--dump-on-exit PREFIX]\n"
         "              (scheduled fault injection: validates the schedule, runs\n"
         "               the workload under faults/retries, prints the per-interval\n"
         "               bandwidth + availability timeline; the spec's \"monitors\"\n"
         "               are SLO watchdogs — breaches print a table and exit 3)\n"
         "  workload    <spec.json> [--out results.jsonl] [--csv timeline.csv]\n"
         "              [--telemetry] [--dump-on-exit PREFIX]\n"
         "              (pluggable workload generators: the spec's\n"
         "               \"workload\" section picks ior, dlio, replay, io500,\n"
         "               grammar or openloop; optional \"chaos\"/\"retry\" sections\n"
         "               compose faults and the retry layer with any generator;\n"
         "               \"monitors\"/\"sampleIntervalSec\" arm SLO watchdogs)\n"
         "  probe       <spec.json> [chaos/workload options]   (SLO watchdog run:\n"
         "               dispatches the spec to chaos or workload by shape,\n"
         "               evaluates its \"monitors\", exits 3 on breach;\n"
         "               --dump-on-exit PREFIX writes the always-on flight\n"
         "               recorder as PREFIX.jsonl + PREFIX.trace.json)\n"
         "  scale       [--clients N] [--classes C] [--site S] [--storage K]\n"
         "              [--rate HZ] [--horizon SEC] [--demand-sigma S] [--telemetry]\n"
         "              [--out results.jsonl]   (flow-class aggregation demo: a\n"
         "               million-client open-loop population simulated as C\n"
         "               classes of N/C members each; prints aggregate goodput,\n"
         "               demuxed per-client latency percentiles and the engine's\n"
         "               peak event footprint)\n"
         "  oracle      list | relations | record | check   (regression harness)\n"
         "              relations [--cases N] [--seed S] [--jobs J] [--relation NAME]\n"
         "                        [--no-shrink] [--cache F]  (metamorphic relations)\n"
         "              record    [--dir tests/golden] [--jobs J] [--figure F] [--cache F]\n"
         "              check     [--dir tests/golden] [--jobs J] [--figure F]\n"
         "                        [--tolerance PCT] [--full] [--cache F] [--telemetry]\n"
         "                        (golden-figure drift; output is byte-identical\n"
         "                         with or without --cache or --telemetry)\n"
         "  trace       --site S --storage K [--workload ior|resnet50|cosmoflow|unet3d]\n"
         "              [--access A] [--nodes N] [--ppn P] [--segments S]\n"
         "              [--internal] [--out trace.json]\n"
         "              (chrome-trace export; --internal adds simulator op spans\n"
         "               and prints the bottleneck-attribution table)\n"
         "  stats       --site S --storage K [--workload W] [--access A] [--nodes N]\n"
         "              [--ppn P] [--segments S] [--json] [--self]\n"
         "              (metrics-registry summary; --json emits the registry as\n"
         "               lossless JSON, --self adds wall-clock self.* profiling)\n"
         "  dump-config --storage vast|gpfs|lustre|nvme|daos --site S   (preset as JSON)\n"
         "  help        this text\n";
  return 0;
}

int cmdIor(const ArgParser& args, std::ostream& out, std::ostream& err) {
  Site site;
  StorageKind kind;
  if (!parseTarget(args, err, site, kind)) return 2;

  IorConfig cfg;
  if (const auto path = args.get("--config")) {
    if (!loadConfig(*path, cfg)) {
      err << "error: cannot load IOR config from " << *path << "\n";
      return 2;
    }
  } else {
    AccessPattern access;
    if (!parsePattern(args.getOr("--access", "seq-write"), access)) {
      err << "error: bad --access\n";
      return 2;
    }
    cfg = IorConfig::scalability(access, args.sizeOr("--nodes", 4), args.sizeOr("--ppn", 16));
    cfg.segments = args.sizeOr("--segments", 512);
    if (args.has("--fsync")) cfg.fsyncPerWrite = true;
    if (args.has("--per-op")) cfg.mode = IorConfig::Mode::PerOp;
    if (args.has("--shared-file")) cfg.filePerProcess = false;
    cfg.repetitions = args.sizeOr("--reps", 3);
    cfg.noiseStdDevFrac = args.numberOr("--noise", 0.03);
    cfg.stonewallSeconds = args.numberOr("--stonewall", 0.0);
  }

  Environment env = makeEnvironment(site, kind, cfg.nodes);
  IorRunner runner(*env.bench, *env.fs);
  const IorResult r = runner.run(cfg);
  out << cfg.describe() << " on " << env.fs->name() << "\n";
  out << "  bandwidth: " << formatBandwidth(r.bandwidth.mean) << " (min "
      << formatBandwidth(r.bandwidth.min) << ", max " << formatBandwidth(r.bandwidth.max)
      << ")\n";
  out << "  moved " << formatBytes(r.totalBytes) << " in " << formatSeconds(r.meanElapsed)
      << " (mean of " << r.samples.size() << " reps)\n";
  return 0;
}

int cmdDlio(const ArgParser& args, std::ostream& out, std::ostream& err) {
  Site site;
  StorageKind kind;
  if (!parseTarget(args, err, site, kind)) return 2;

  DlioConfig cfg;
  if (const auto path = args.get("--config")) {
    if (!loadConfig(*path, cfg)) {
      err << "error: cannot load DLIO config from " << *path << "\n";
      return 2;
    }
  } else {
    const std::string w = args.getOr("--workload", "resnet50");
    if (w == "resnet50") cfg.workload = DlioWorkload::resnet50();
    else if (w == "cosmoflow") cfg.workload = DlioWorkload::cosmoflow();
    else if (w == "unet3d") cfg.workload = DlioWorkload::unet3d();
    else {
      err << "error: --workload must be resnet50|cosmoflow|unet3d\n";
      return 2;
    }
    cfg.nodes = args.sizeOr("--nodes", 4);
    cfg.procsPerNode = args.sizeOr("--ppn", 4);
  }

  const DlioResult r = runDlio(site, kind, cfg);
  out << cfg.workload.name << " on " << toString(kind) << "@" << toString(site) << " ("
      << cfg.nodes << " nodes x " << cfg.procsPerNode << " ranks)\n";
  out << "  runtime             : " << formatSeconds(r.runtime) << "\n";
  out << "  non-overlapping I/O : " << formatSeconds(r.breakdown.nonOverlappingIo) << "\n";
  out << "  overlapping I/O     : " << formatSeconds(r.breakdown.overlappingIo) << "\n";
  out << "  app throughput      : " << formatBandwidth(r.throughput.application) << "\n";
  out << "  system throughput   : " << formatBandwidth(r.throughput.system) << "\n";
  if (r.bytesCheckpointed > 0) {
    out << "  checkpoints written : " << formatBytes(r.bytesCheckpointed) << "\n";
  }
  return 0;
}

int cmdMdtest(const ArgParser& args, std::ostream& out, std::ostream& err) {
  Site site;
  StorageKind kind;
  if (!parseTarget(args, err, site, kind)) return 2;

  MdtestConfig cfg;
  cfg.nodes = args.sizeOr("--nodes", 1);
  cfg.procsPerNode = args.sizeOr("--procs", 16);
  cfg.itemsPerProc = args.sizeOr("--items", 128);
  cfg.uniqueDirPerTask = args.has("--unique-dir");
  cfg.repetitions = args.sizeOr("--reps", 3);
  cfg.noiseStdDevFrac = args.numberOr("--noise", 0.03);

  Environment env = makeEnvironment(site, kind, cfg.nodes);
  MdtestRunner runner(*env.bench, *env.fs);
  const MdtestResult r = runner.run(cfg);
  out << "mdtest on " << env.fs->name() << " ("
      << (cfg.uniqueDirPerTask ? "unique dirs" : "shared dir") << ", " << cfg.totalItems()
      << " items)\n";
  out << "  create: " << static_cast<long long>(r.createOpsPerSec.mean) << " ops/s\n";
  out << "  stat  : " << static_cast<long long>(r.statOpsPerSec.mean) << " ops/s\n";
  out << "  remove: " << static_cast<long long>(r.removeOpsPerSec.mean) << " ops/s\n";
  return 0;
}

int cmdPlan(const ArgParser& args, std::ostream& out, std::ostream& err) {
  Machine machine;
  const std::string m = args.getOr("--machine", "wombat");
  if (m == "lassen") machine = Machine::lassen();
  else if (m == "ruby") machine = Machine::ruby();
  else if (m == "quartz") machine = Machine::quartz();
  else if (m == "wombat") machine = Machine::wombat();
  else {
    err << "error: --machine must be lassen|ruby|quartz|wombat\n";
    return 2;
  }
  PlanGoal goal;
  if (!parsePattern(args.getOr("--pattern", "seq-read"), goal.pattern)) {
    err << "error: bad --pattern\n";
    return 2;
  }
  goal.minGBsPerNode = args.numberOr("--min-gbs", 1.0);
  goal.nodes = args.sizeOr("--nodes", 8);
  goal.procsPerNode = args.sizeOr("--ppn", 16);

  const auto candidates = planVastDeployment(machine, goal);
  ResultTable t("deployment candidates (sorted: goal-meeting first, cheapest first)");
  t.setHeader({"config", "GB/s per node", "meets goal", "cost units"});
  for (const auto& c : candidates) {
    t.addRow({c.config.name, c.measuredGBsPerNode, std::string(c.meetsGoal ? "yes" : "no"),
              c.costUnits()});
  }
  out << t.toString();
  return candidates.empty() || !candidates.front().meetsGoal ? 1 : 0;
}

int cmdTakeaways(const ArgParser&, std::ostream& out, std::ostream&) {
  const auto checks = runAllChecks();
  out << calibration::toMarkdown(checks);
  for (const auto& c : checks) {
    if (!c.pass()) return 1;
  }
  return 0;
}

int cmdSweep(const ArgParser& args, std::ostream& out, std::ostream& err) {
  const auto specPath = args.get("--spec");
  if (!specPath) {
    err << "error: sweep requires --spec <file.json>\n";
    return 2;
  }
  sweep::SweepSpec spec;
  if (!sweep::loadSpec(*specPath, spec)) {
    err << "error: cannot load sweep spec from " << *specPath << "\n";
    return 2;
  }
  std::size_t jobs = args.sizeOr("--jobs", sweep::defaultJobs());
  if (jobs == 0) jobs = sweep::defaultJobs();
  CacheSession cache;
  if (!cache.open(args, err)) return 2;
  sweep::TrialOptions opts;
  opts.telemetry = args.has("--telemetry");
  opts.selfProfile = args.has("--self-profile");
  const sweep::SweepOutcome result = sweep::runSweep(spec, jobs, cache.get(), opts);

  ResultTable t("sweep '" + spec.name + "': " + std::to_string(result.results.size()) +
                " trials on " + std::to_string(jobs) + " jobs");
  t.setHeader({"trial", "params", "GB/s", "min", "max", "elapsed"});
  for (const auto& r : result.results) {
    if (r.metrics.ok) {
      t.addRow({std::to_string(r.trial.index), sweep::paramsKey(r.trial), r.metrics.meanGBs,
                r.metrics.minGBs, r.metrics.maxGBs, formatSeconds(r.metrics.elapsedSec)});
    } else {
      t.addRow({std::to_string(r.trial.index), sweep::paramsKey(r.trial),
                std::string("FAILED"), std::string(), std::string(), r.metrics.error});
    }
  }
  out << t.toString();
  if (result.bandwidthGBs.count() > 0) {
    out << "aggregate over " << result.bandwidthGBs.count() << " ok trials: mean "
        << result.bandwidthGBs.mean() << " GB/s (min " << result.bandwidthGBs.min() << ", max "
        << result.bandwidthGBs.max() << ", stddev " << result.bandwidthGBs.stddev() << ")\n";
  }
  if (result.failures > 0) {
    out << result.failures << " trial(s) failed\n";
  }
  if (cache.get() != nullptr) {
    const std::size_t looked = result.cacheHits + result.cacheMisses;
    out << "cache: " << result.cacheHits << " hit(s), " << result.cacheMisses
        << " miss(es) — hit rate "
        << (looked > 0 ? 100.0 * static_cast<double>(result.cacheHits) /
                             static_cast<double>(looked)
                       : 0.0)
        << "%, " << cache.get()->size() << " entries\n";
  }

  if (const auto outPath = args.get("--out")) {
    if (!sweep::writeJsonl(result, *outPath)) {
      err << "error: cannot write " << *outPath << "\n";
      return 1;
    }
    out << "wrote " << *outPath << "\n";
  }
  if (const auto csvPath = args.get("--csv")) {
    if (!sweep::writeCsv(result, *csvPath)) {
      err << "error: cannot write " << *csvPath << "\n";
      return 1;
    }
    out << "wrote " << *csvPath << "\n";
  }
  if (const auto basePath = args.get("--baseline")) {
    std::map<std::string, double> baseline;
    if (!sweep::loadBaseline(*basePath, baseline)) {
      err << "error: cannot load baseline from " << *basePath << "\n";
      return 1;
    }
    ResultTable d("delta vs " + *basePath);
    d.setHeader({"trial", "params", "baseline GB/s", "now GB/s", "delta %"});
    for (const auto& delta : sweep::compareToBaseline(result, baseline)) {
      if (delta.matched) {
        d.addRow({std::to_string(delta.index), delta.key, delta.baselineGBs, delta.currentGBs,
                  delta.deltaPct});
      } else {
        d.addRow({std::to_string(delta.index), delta.key, std::string("(new)"),
                  delta.currentGBs, std::string()});
      }
    }
    out << d.toString();
  }
  if (!cache.close(err)) return 2;
  const bool allFailed = !result.results.empty() && result.failures == result.results.size();
  return allFailed ? 1 : 0;
}

int cmdChaos(const ArgParser& args, std::ostream& out, std::ostream& err) {
  std::string specPath = args.positionalOr(1, "");
  if (const auto opt = args.get("--spec")) specPath = *opt;
  if (specPath.empty()) {
    err << "error: chaos requires a scenario file (hcsim chaos <spec.json>)\n";
    return 2;
  }
  chaos::ChaosSpec spec;
  std::string parseErr;
  if (!chaos::loadChaosSpec(specPath, spec, parseErr)) {
    err << "error: " << parseErr << "\n";
    return 2;
  }
  Environment env = makeEnvironment(spec.site, spec.storage, spec.workload.nodes,
                                    spec.storageConfig.isNull() ? nullptr : &spec.storageConfig,
                                    spec.transport.isNull() ? nullptr : &spec.transport);
  // Validate before running so every schedule problem surfaces at once
  // with an actionable message and a distinct exit code.
  const std::vector<std::string> problems =
      chaos::validateSchedule(spec, *env.fs, env.bench->topo());
  if (!problems.empty()) {
    err << "error: invalid scenario " << specPath << ":\n";
    for (const std::string& p : problems) err << "  - " << p << "\n";
    return 2;
  }
  if (args.has("--telemetry")) env.bench->telemetry().setEnabled(true);
  const chaos::ChaosOutcome result = chaos::runChaosOn(env, spec);

  ResultTable t = chaos::renderTimeline(result);
  out << t.toString();
  out << "healthy " << result.healthyGBs << " GB/s, mean " << result.meanGBs << ", min "
      << result.minGBs << ", final " << result.finalGBs << "\n";
  out << "degraded " << result.degradedSeconds << " s";
  if (result.timeToRecover >= 0.0) out << ", recovered " << result.timeToRecover << " s after restore";
  out << "; retries " << result.retries << ", failed ops " << result.failedOps
      << ", late completions " << result.lateCompletions << "\n";
  if (result.rebuildBytes > 0) {
    out << "rebuild: " << formatBytes(result.rebuildBytes) << " drained at t="
        << result.rebuildCompletedAt << " s\n";
  }
  if (result.monitors > 0) {
    out << "monitors: " << result.monitors << " evaluated, " << result.breaches.size()
        << " breach(es)\n";
    out << probe::renderBreachTable(result.breaches);
  }
  if (const auto outPath = args.get("--out")) {
    std::ofstream f(*outPath, std::ios::binary | std::ios::trunc);
    if (!f) {
      err << "error: cannot write " << *outPath << "\n";
      return 1;
    }
    f << chaos::toJsonl(result);
    out << "wrote " << *outPath << "\n";
  }
  if (const auto csvPath = args.get("--csv")) {
    std::ofstream f(*csvPath, std::ios::binary | std::ios::trunc);
    if (!f) {
      err << "error: cannot write " << *csvPath << "\n";
      return 1;
    }
    f << t.toCsv();
    out << "wrote " << *csvPath << "\n";
  }
  if (const auto prefix = args.get("--dump-on-exit")) {
    if (!dumpRecorder(env.bench->recorder(), *prefix, out, err)) return 1;
  }
  return result.breaches.empty() ? 0 : 3;
}

int cmdWorkload(const ArgParser& args, std::ostream& out, std::ostream& err) {
  std::string specPath = args.positionalOr(1, "");
  if (const auto opt = args.get("--spec")) specPath = *opt;
  if (specPath.empty()) {
    err << "error: workload requires a spec file (hcsim workload <spec.json>)\n";
    return 2;
  }
  std::ifstream f(specPath);
  if (!f) {
    err << "error: cannot read " << specPath << "\n";
    return 2;
  }
  std::string text((std::istreambuf_iterator<char>(f)), std::istreambuf_iterator<char>());
  JsonValue doc;
  if (!parseJson(text, doc)) {
    err << "error: " << specPath << " is not valid JSON\n";
    return 2;
  }
  // Collect every envelope + generator problem before giving up, so one
  // run of the CLI reports everything that needs fixing.
  workload::WorkloadRunSpec spec;
  std::vector<std::string> problems;
  workload::parseWorkloadSpec(doc, spec, problems);
  workload::SourceBundle bundle;
  if (problems.empty()) bundle = workload::makeSource(spec, problems);
  if (!problems.empty()) {
    err << "error: invalid workload spec " << specPath << ":\n";
    for (const std::string& p : problems) err << "  - " << p << "\n";
    return 2;
  }
  Environment env = makeEnvironment(spec.site, spec.storage, bundle.nodes,
                                    spec.storageConfig.isNull() ? nullptr : &spec.storageConfig,
                                    spec.transport.isNull() ? nullptr : &spec.transport);
  const bool telemetryOn = args.has("--telemetry");
  if (telemetryOn) env.bench->telemetry().setEnabled(true);
  workload::ChaosLandmarks landmarks;
  try {
    landmarks = workload::injectWorkloadChaos(spec, env);
  } catch (const std::exception& ex) {
    err << "error: invalid workload spec " << specPath << ":\n  - " << ex.what() << "\n";
    return 2;
  }
  TraceLog trace;
  const workload::WorkloadOutcome r =
      workload::runWorkload(env, spec, *bundle.source, &trace, &landmarks);

  out << "workload '" << spec.name << "': generator " << r.generator << " on "
      << toString(spec.site) << "/" << toString(spec.storage) << ", " << bundle.nodes
      << " node(s)\n";
  out << "  ops issued " << r.opsIssued << ", completed " << r.opsCompleted;
  if (r.opsFailed > 0) out << ", failed " << r.opsFailed;
  out << "; meta " << r.metaOps << ", compute " << r.computeOps << ", barriers " << r.barriers
      << "\n";
  out << "  moved " << formatBytes(r.bytesMoved) << " in " << formatSeconds(r.elapsed) << " -> "
      << r.goodputGBs() << " GB/s\n";
  if (!r.opLatencies.empty()) {
    const Summary lat = summarize(r.opLatencies);
    out << "  op latency: p50 " << formatSeconds(lat.p50) << ", p95 " << formatSeconds(lat.p95)
        << ", p99 " << formatSeconds(lat.p99) << " over " << lat.count << " ops\n";
  }
  if (spec.retryEnabled) {
    out << "  retries " << r.retries << ", late completions " << r.lateCompletions << "\n";
  }
  if (!r.timeline.empty()) {
    ResultTable t("goodput timeline (" + std::to_string(r.timeline.size()) + " slices)");
    t.setHeader({"t0", "t1", "GB/s"});
    for (const workload::WorkloadSample& s : r.timeline) {
      t.addRow({formatSeconds(s.start), formatSeconds(s.end), s.gbs});
    }
    out << t.toString();
  }
  if (r.monitors > 0) {
    out << "monitors: " << r.monitors << " evaluated, " << r.breaches.size() << " breach(es)\n";
    out << probe::renderBreachTable(r.breaches);
  }
  if (telemetryOn) {
    telemetry::MetricsRegistry reg;
    env.bench->collectMetrics(reg, env.fs.get());
    if (env.transport) env.transport->exportMetrics(reg);
    workload::exportTo(r, reg);
    out << reg.renderTable();
    const telemetry::AttributionReport rep = env.bench->telemetry().attribution();
    if (rep.spans > 0) out << rep.renderTable();
  }
  if (const auto outPath = args.get("--out")) {
    std::ofstream of(*outPath, std::ios::binary | std::ios::trunc);
    if (!of) {
      err << "error: cannot write " << *outPath << "\n";
      return 1;
    }
    of << workload::toJsonl(r);
    out << "wrote " << *outPath << "\n";
  }
  if (const auto csvPath = args.get("--csv")) {
    std::ofstream of(*csvPath, std::ios::binary | std::ios::trunc);
    if (!of) {
      err << "error: cannot write " << *csvPath << "\n";
      return 1;
    }
    of << workload::toCsv(r);
    out << "wrote " << *csvPath << "\n";
  }
  if (const auto prefix = args.get("--dump-on-exit")) {
    if (!dumpRecorder(env.bench->recorder(), *prefix, out, err)) return 1;
  }
  return r.breaches.empty() ? 0 : 3;
}

int cmdProbe(const ArgParser& args, std::ostream& out, std::ostream& err) {
  std::string specPath = args.positionalOr(1, "");
  if (const auto opt = args.get("--spec")) specPath = *opt;
  if (specPath.empty()) {
    err << "error: probe requires a spec file (hcsim probe <spec.json>)\n";
    return 2;
  }
  std::ifstream f(specPath);
  if (!f) {
    err << "error: cannot read " << specPath << "\n";
    return 2;
  }
  std::string text((std::istreambuf_iterator<char>(f)), std::istreambuf_iterator<char>());
  JsonValue doc;
  if (!parseJson(text, doc) || !doc.isObject()) {
    err << "error: " << specPath << " is not a JSON object\n";
    return 2;
  }
  // A workload spec's "workload" section names a generator; a chaos
  // scenario's is plain drill knobs (nodes/procsPerNode/...). That key
  // decides which runner gets the spec — both evaluate its "monitors".
  const JsonValue* w = doc.find("workload");
  const bool isWorkload = w != nullptr && w->isObject() && w->find("generator") != nullptr;
  return isWorkload ? cmdWorkload(args, out, err) : cmdChaos(args, out, err);
}

int cmdScale(const ArgParser& args, std::ostream& out, std::ostream& err) {
  // Flow-class aggregation demo: a service-scale open-loop population
  // (a million clients by default) simulated as `--classes` flow
  // classes, each standing for clients/classes members. Memory and event
  // count stay proportional to the class count, not the client count.
  Site site = Site::Lassen;
  StorageKind kind = StorageKind::Vast;
  if (const auto s = args.get("--site"); s && !parseSite(*s, site)) {
    err << "error: --site must be one of lassen|ruby|quartz|wombat\n";
    return 2;
  }
  if (const auto s = args.get("--storage"); s && !parseStorage(*s, kind)) {
    err << "error: --storage must be one of vast|gpfs|lustre|nvme|daos\n";
    return 2;
  }
  const std::size_t clients = args.sizeOr("--clients", 1000000);
  const std::size_t classes = args.sizeOr("--classes", 256);
  if (clients == 0 || classes == 0) {
    err << "error: --clients and --classes must be > 0\n";
    return 2;
  }

  workload::OpenLoopConfig cfg;
  cfg.clients = classes;
  cfg.clientsPerRank = (clients + classes - 1) / classes;  // ceil: at least `clients`
  cfg.clientsPerNode = args.sizeOr("--classes-per-node", 8);
  cfg.ratePerClientHz = args.numberOr("--rate", 5.0);
  cfg.horizonSec = args.numberOr("--horizon", 5.0);
  cfg.demandSigma = args.numberOr("--demand-sigma", 0.0);
  cfg.requestBytes = static_cast<Bytes>(args.numberOr("--request", 128.0 * 1024.0));
  cfg.readFraction = args.numberOr("--read-fraction", 0.9);
  cfg.objects = args.sizeOr("--objects", cfg.objects);
  cfg.seed = static_cast<std::uint64_t>(args.numberOr("--seed", static_cast<double>(cfg.seed)));
  if (cfg.ratePerClientHz <= 0.0 || cfg.horizonSec <= 0.0) {
    err << "error: --rate and --horizon must be > 0\n";
    return 2;
  }

  Environment env = makeEnvironment(site, kind, cfg.nodes(), nullptr);
  const bool telemetryOn = args.has("--telemetry");
  if (telemetryOn) env.bench->telemetry().setEnabled(true);
  workload::OpenLoopSource source(cfg);
  workload::WorkloadRunner runner(*env.bench, *env.fs);
  const workload::WorkloadOutcome r = runner.run(source);

  out << "scale: " << r.clientsTotal() << " clients as " << r.ranks << " flow classes x "
      << r.clientsPerRank << " members on " << toString(site) << "/" << toString(kind) << " ("
      << cfg.nodes() << " nodes)\n";
  out << "  aggregate: " << r.opsCompleted << " client ops, " << formatBytes(r.bytesMoved)
      << " in " << formatSeconds(r.elapsed) << " -> " << r.goodputGBs() << " GB/s ("
      << r.goodputGBs() / static_cast<double>(r.clientsTotal()) * 1e6 << " KB/s per client)\n";
  if (!r.opLatencies.empty()) {
    // Statistical demux: every class-op latency stands for
    // clientsPerRank identical per-client samples.
    std::vector<scale::WeightedSample> ws;
    ws.reserve(r.opLatencies.size());
    for (double v : r.opLatencies) ws.push_back({v, r.clientsPerRank});
    const Summary lat = scale::demultiplex(std::move(ws));
    out << "  per-client latency over " << lat.count << " client ops: p50 "
        << formatSeconds(lat.p50) << ", p95 " << formatSeconds(lat.p95) << ", p99 "
        << formatSeconds(lat.p99) << "\n";
  }
  const Simulator& sim = env.bench->sim();
  out << "  engine: " << sim.eventsDispatched() << " events dispatched, peak pending "
      << sim.peakPendingEvents() << ", slab " << sim.slabSize()
      << " slots (flat in members, proportional to classes)\n";
  if (telemetryOn) {
    telemetry::MetricsRegistry reg;
    env.bench->collectMetrics(reg, env.fs.get());
    if (env.transport) env.transport->exportMetrics(reg);
    workload::exportTo(r, reg);
    out << reg.renderTable();
  }
  if (const auto outPath = args.get("--out")) {
    std::ofstream of(*outPath, std::ios::binary | std::ios::trunc);
    if (!of) {
      err << "error: cannot write " << *outPath << "\n";
      return 1;
    }
    of << workload::toJsonl(r);
    out << "wrote " << *outPath << "\n";
  }
  return 0;
}

namespace {

int oracleList(std::ostream& out) {
  const auto& registry = oracle::RelationRegistry::builtin();
  out << "metamorphic relations (" << registry.all().size() << "):\n";
  for (const auto& r : registry.all()) {
    out << "  " << r.name << "  [" << r.storage << ", " << oracle::toString(r.kind) << "]\n"
        << "      " << r.claim << "\n";
  }
  out << "golden figures (" << oracle::builtinFigures().size() << "):\n";
  for (const auto& f : oracle::builtinFigures()) {
    out << "  " << f.name << "  (" << f.spec.trialCount() << " cells)  " << f.title << "\n";
  }
  return 0;
}

int oracleRelations(const ArgParser& args, std::ostream& out, std::ostream& err) {
  oracle::SuiteOptions options;
  options.casesPerRelation = args.sizeOr("--cases", 50);
  options.seed = static_cast<std::uint64_t>(args.numberOr("--seed", 1.0));
  options.jobs = args.sizeOr("--jobs", 0);
  options.shrink = !args.has("--no-shrink");
  CacheSession cache;
  if (!cache.open(args, err)) return 2;
  options.cache = cache.get();

  const auto& registry = oracle::RelationRegistry::builtin();
  std::vector<oracle::RelationReport> reports;
  if (const auto name = args.get("--relation")) {
    const oracle::MetamorphicRelation* rel = registry.find(*name);
    if (!rel) {
      err << "error: unknown relation '" << *name << "' (try: hcsim oracle list)\n";
      return 2;
    }
    reports.push_back(oracle::runRelation(*rel, options));
  } else {
    reports = oracle::runSuite(registry, options);
  }
  out << oracle::toMarkdown(reports);
  if (!cache.close(err)) return 2;
  for (const auto& r : reports) {
    if (!r.pass()) return 1;
  }
  return 0;
}

/// The figures a record/check run covers: all of them, or --figure F.
bool selectFigures(const ArgParser& args, std::ostream& err,
                   std::vector<const oracle::GoldenFigure*>& out) {
  if (const auto name = args.get("--figure")) {
    const oracle::GoldenFigure* fig = oracle::findFigure(*name);
    if (!fig) {
      err << "error: unknown figure '" << *name << "' (try: hcsim oracle list)\n";
      return false;
    }
    out.push_back(fig);
    return true;
  }
  for (const auto& f : oracle::builtinFigures()) out.push_back(&f);
  return true;
}

int oracleRecord(const ArgParser& args, std::ostream& out, std::ostream& err) {
  const std::string dir = args.getOr("--dir", "tests/golden");
  const std::size_t jobs = args.sizeOr("--jobs", 0);
  std::vector<const oracle::GoldenFigure*> figures;
  if (!selectFigures(args, err, figures)) return 2;
  CacheSession cache;
  if (!cache.open(args, err)) return 2;
  sweep::TrialOptions opts;
  opts.telemetry = args.has("--telemetry");
  for (const oracle::GoldenFigure* fig : figures) {
    std::string error;
    if (!oracle::recordFigure(*fig, dir, jobs, error, cache.get(), opts)) {
      err << "error: " << error << "\n";
      return 1;
    }
    out << "recorded " << oracle::goldenPath(dir, fig->name) << " ("
        << fig->spec.trialCount() << " cells)\n";
  }
  if (!cache.close(err)) return 2;
  return 0;
}

int oracleCheck(const ArgParser& args, std::ostream& out, std::ostream& err) {
  const std::string dir = args.getOr("--dir", "tests/golden");
  const std::size_t jobs = args.sizeOr("--jobs", 0);
  const double tolerance = args.numberOr("--tolerance", 2.0);
  std::vector<const oracle::GoldenFigure*> figures;
  if (!selectFigures(args, err, figures)) return 2;
  // Cache stats and telemetry deliberately never reach stdout here:
  // check output must stay byte-identical with the cache on or off,
  // with or without --telemetry, at any --jobs.
  CacheSession cache;
  if (!cache.open(args, err)) return 2;
  sweep::TrialOptions opts;
  opts.telemetry = args.has("--telemetry");
  bool pass = true;
  for (const oracle::GoldenFigure* fig : figures) {
    const oracle::FigureCheck check =
        oracle::checkFigure(*fig, dir, jobs, tolerance, cache.get(), opts);
    out << oracle::deltaTable(check, tolerance, args.has("--full"));
    pass = pass && check.pass();
  }
  out << (pass ? "oracle golden check: PASS" : "oracle golden check: FAIL") << "\n";
  if (!cache.close(err)) return 2;
  return pass ? 0 : 1;
}

}  // namespace

int cmdOracle(const ArgParser& args, std::ostream& out, std::ostream& err) {
  const std::string sub = args.positionalOr(1, "list");
  if (sub == "list") return oracleList(out);
  if (sub == "relations") return oracleRelations(args, out, err);
  if (sub == "record") return oracleRecord(args, out, err);
  if (sub == "check") return oracleCheck(args, out, err);
  err << "error: oracle subcommand must be list|relations|record|check\n";
  return 2;
}

namespace {

/// Shared workload driver for trace/stats: build the environment, run
/// one IOR or DLIO pass (telemetry pre-enabled when asked), and hand
/// back the app-level event log.
struct WorkloadRun {
  Environment env;
  TraceLog appTrace;
};

bool runTracedWorkload(const ArgParser& args, std::ostream& err, bool telemetryOn,
                       WorkloadRun& run, bool selfProfileOn = false) {
  Site site;
  StorageKind kind;
  if (!parseTarget(args, err, site, kind)) return false;
  const std::string w = args.getOr("--workload", "ior");
  const std::size_t nodes = args.sizeOr("--nodes", 4);
  run.env = makeEnvironment(site, kind, nodes);
  if (telemetryOn) run.env.bench->telemetry().setEnabled(true);
  if (selfProfileOn) run.env.bench->profiler().setEnabled(true);
  if (w == "ior") {
    AccessPattern access;
    if (!parsePattern(args.getOr("--access", "seq-write"), access)) {
      err << "error: bad --access\n";
      return false;
    }
    IorConfig cfg = IorConfig::scalability(access, nodes, args.sizeOr("--ppn", 16));
    cfg.segments = args.sizeOr("--segments", 512);
    cfg.repetitions = 1;
    cfg.noiseStdDevFrac = 0.0;
    IorRunner runner(*run.env.bench, *run.env.fs);
    runner.setTraceLog(&run.appTrace);
    runner.run(cfg);
    return true;
  }
  DlioConfig cfg;
  if (w == "resnet50") cfg.workload = DlioWorkload::resnet50();
  else if (w == "cosmoflow") cfg.workload = DlioWorkload::cosmoflow();
  else if (w == "unet3d") cfg.workload = DlioWorkload::unet3d();
  else {
    err << "error: --workload must be ior|resnet50|cosmoflow|unet3d\n";
    return false;
  }
  cfg.nodes = nodes;
  cfg.procsPerNode = args.sizeOr("--ppn", 4);
  DlioRunner runner(*run.env.bench, *run.env.fs);
  DlioResult r = runner.run(cfg);
  run.appTrace = std::move(r.trace);
  return true;
}

}  // namespace

int cmdTrace(const ArgParser& args, std::ostream& out, std::ostream& err) {
  const bool internal = args.has("--internal");
  WorkloadRun run;
  if (!runTracedWorkload(args, err, internal, run)) return 2;
  const telemetry::Telemetry& tel = run.env.bench->telemetry();
  const std::string path = args.getOr("--out", "trace.json");
  std::ofstream f(path);
  if (!f) {
    err << "error: cannot write " << path << "\n";
    return 1;
  }
  f << telemetry::mergedChromeTraceJson(run.appTrace, tel);
  f.close();
  if (!f) {
    err << "error: cannot write " << path << "\n";
    return 1;
  }
  out << "wrote " << path << " (" << run.appTrace.events().size() << " app events";
  if (internal) out << ", " << tel.spanCount() << " internal spans";
  out << ")\n";
  if (internal) out << tel.attribution().renderTable();
  return 0;
}

int cmdStats(const ArgParser& args, std::ostream& out, std::ostream& err) {
  WorkloadRun run;
  if (!runTracedWorkload(args, err, /*telemetryOn=*/true, run, args.has("--self"))) return 2;
  telemetry::MetricsRegistry reg;
  run.env.bench->collectMetrics(reg, run.env.fs.get());
  // transport.* rows appear only when the environment ran on a fabric
  // (DAOS always does; other models only with a "transport" section).
  if (run.env.transport) run.env.transport->exportMetrics(reg);
  if (args.has("--json")) {
    // Machine face of the registry: numbers round-trip losslessly (the
    // JSON writer is the same one behind the sweep JSONL).
    out << writeJson(reg.toJson(), 2) << "\n";
    return 0;
  }
  out << reg.renderTable();
  const telemetry::AttributionReport rep = run.env.bench->telemetry().attribution();
  if (rep.spans > 0) out << rep.renderTable();
  return 0;
}

int cmdDumpConfig(const ArgParser& args, std::ostream& out, std::ostream& err) {
  Site site;
  StorageKind kind;
  if (!parseTarget(args, err, site, kind)) return 2;
  JsonValue j;
  switch (kind) {
    case StorageKind::Vast:
      j = toJson(site == Site::Lassen   ? vastOnLassen()
                 : site == Site::Ruby   ? vastOnRuby()
                 : site == Site::Quartz ? vastOnQuartz()
                                        : vastOnWombat());
      break;
    case StorageKind::Gpfs: j = toJson(gpfsOnLassen()); break;
    case StorageKind::Lustre: j = toJson(lustreOnQuartz()); break;
    case StorageKind::NvmeLocal: j = toJson(nvmeOnWombat()); break;
    case StorageKind::Daos: j = toJson(daosInstance()); break;
  }
  out << writeJson(j, 2) << "\n";
  return 0;
}

int run(const ArgParser& args, std::ostream& out, std::ostream& err) {
  const std::string cmd = args.positionalOr(0, "help");
  try {
    if (cmd == "ior") return cmdIor(args, out, err);
    if (cmd == "dlio") return cmdDlio(args, out, err);
    if (cmd == "mdtest") return cmdMdtest(args, out, err);
    if (cmd == "plan") return cmdPlan(args, out, err);
    if (cmd == "takeaways") return cmdTakeaways(args, out, err);
    if (cmd == "sweep") return cmdSweep(args, out, err);
    if (cmd == "chaos") return cmdChaos(args, out, err);
    if (cmd == "workload") return cmdWorkload(args, out, err);
    if (cmd == "probe") return cmdProbe(args, out, err);
    if (cmd == "scale") return cmdScale(args, out, err);
    if (cmd == "oracle") return cmdOracle(args, out, err);
    if (cmd == "trace") return cmdTrace(args, out, err);
    if (cmd == "stats") return cmdStats(args, out, err);
    if (cmd == "dump-config") return cmdDumpConfig(args, out, err);
  } catch (const std::exception& ex) {
    // Bad geometry, impossible site/storage combinations, etc. surface
    // as clean CLI errors, not crashes.
    err << "error: " << ex.what() << "\n";
    return 1;
  }
  if (cmd == "help" || cmd == "--help") return cmdHelp(out);
  err << "error: unknown command '" << cmd << "' (try: hcsim help)\n";
  return 2;
}

}  // namespace hcsim::cli
