#include "chaos/chaos_spec.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>

#include "config/serialize.hpp"
#include "net/topology.hpp"
#include "sweep/sweep_spec.hpp"

namespace hcsim::chaos {

namespace {

bool parseSite(const std::string& s, Site& out) {
  if (s == "lassen") out = Site::Lassen;
  else if (s == "ruby") out = Site::Ruby;
  else if (s == "quartz") out = Site::Quartz;
  else if (s == "wombat") out = Site::Wombat;
  else return false;
  return true;
}

bool parseStorage(const std::string& s, StorageKind& out) {
  if (s == "vast") out = StorageKind::Vast;
  else if (s == "gpfs") out = StorageKind::Gpfs;
  else if (s == "lustre") out = StorageKind::Lustre;
  else if (s == "nvme") out = StorageKind::NvmeLocal;
  else if (s == "daos") out = StorageKind::Daos;
  else return false;
  return true;
}

bool parseAction(const std::string& s, FaultAction& out) {
  if (s == "fail") out = FaultAction::Fail;
  else if (s == "fail-slow") out = FaultAction::FailSlow;
  else if (s == "restore") out = FaultAction::Restore;
  else return false;
  return true;
}

bool parseEvent(const JsonValue& j, std::size_t idx, ChaosEvent& out, std::string& error) {
  const auto at = [idx](const std::string& what) {
    return "events[" + std::to_string(idx) + "]: " + what;
  };
  if (!j.isObject()) {
    error = at("must be an object");
    return false;
  }
  const JsonValue* t = j.find("atSec");
  if (t == nullptr || !t->isNumber() || *t->number() < 0.0) {
    error = at("'atSec' must be a non-negative number");
    return false;
  }
  out.at = *t->number();
  const std::string action = j.stringOr("action", "");
  if (!parseAction(action, out.fault.action)) {
    error = at("'action' must be fail|fail-slow|restore (got '" + action + "')");
    return false;
  }
  out.fault.component = j.stringOr("component", "");
  out.fault.link = j.stringOr("link", "");
  if (!out.fault.link.empty()) out.fault.component = "link";
  if (out.fault.component.empty()) {
    error = at(
        "needs a 'component' kind (cnode|dnode|dbox|nsd|oss|mds|drive|target) or a 'link' name");
    return false;
  }
  if (out.fault.component == "link" && out.fault.link.empty()) {
    error = at("component 'link' needs the 'link' key naming a topology link");
    return false;
  }
  out.fault.index = static_cast<std::size_t>(j.numberOr("index", 0.0));
  if (const JsonValue* sv = j.find("severity")) {
    if (!sv->isNumber()) {
      error = at("'severity' must be a number in (0, 1)");
      return false;
    }
    out.fault.severity = *sv->number();
  }
  out.rebuildGiB = j.numberOr("rebuildGiB", 0.0);
  if (out.rebuildGiB < 0.0) {
    error = at("'rebuildGiB' must be >= 0");
    return false;
  }
  if (out.rebuildGiB > 0.0 && out.fault.action != FaultAction::Restore) {
    error = at("'rebuildGiB' only makes sense on a restore event");
    return false;
  }
  return true;
}

}  // namespace

bool parseChaosSpec(const JsonValue& json, ChaosSpec& out, std::string& error) {
  if (!json.isObject()) {
    error = "scenario must be a JSON object";
    return false;
  }
  out = ChaosSpec{};
  out.name = json.stringOr("name", "chaos");
  if (!parseSite(json.stringOr("site", "lassen"), out.site)) {
    error = "'site' must be lassen|ruby|quartz|wombat";
    return false;
  }
  if (!parseStorage(json.stringOr("storage", "vast"), out.storage)) {
    error = "'storage' must be vast|gpfs|lustre|nvme|daos";
    return false;
  }
  if (const JsonValue* sc = json.find("storageConfig")) out.storageConfig = sweep::deepCopy(*sc);
  if (const JsonValue* tr = json.find("transport")) {
    if (!tr->isObject() && !tr->isNull()) {
      error = "'transport' must be an object of endpoint-profile overrides";
      return false;
    }
    out.transport = sweep::deepCopy(*tr);
  }

  if (const JsonValue* w = json.find("workload")) {
    if (!w->isObject()) {
      error = "'workload' must be an object";
      return false;
    }
    out.workload.nodes = static_cast<std::size_t>(w->numberOr("nodes", 4.0));
    out.workload.procsPerNode = static_cast<std::size_t>(w->numberOr("procsPerNode", 8.0));
    if (const JsonValue* a = w->find("access")) {
      if (!fromJson(*a, out.workload.access)) {
        error = "workload: 'access' must be seq-read|seq-write|rand-read|rand-write";
        return false;
      }
    }
    out.workload.requestBytes =
        static_cast<Bytes>(w->numberOr("requestBytes", 16.0 * 1024 * 1024));
    out.workload.clientsPerProc =
        static_cast<std::size_t>(w->numberOr("clientsPerProc", 1.0));
    if (w->numberOr("clientsPerProc", 1.0) < 1.0) {
      error = "workload: 'clientsPerProc' must be >= 1";
      return false;
    }
  }

  out.horizon = json.numberOr("horizonSec", 90.0);
  out.interval = json.numberOr("intervalSec", 5.0);
  out.degradedTolerance = json.numberOr("degradedTolerance", 0.02);

  if (const JsonValue* r = json.find("retry")) {
    if (r->isBool()) {
      out.retryEnabled = *r->boolean();
    } else if (r->isObject()) {
      out.retry.timeout = r->numberOr("timeoutSec", out.retry.timeout);
      out.retry.maxRetries =
          static_cast<std::size_t>(r->numberOr("maxRetries", static_cast<double>(out.retry.maxRetries)));
      out.retry.backoffBase = r->numberOr("backoffBaseSec", out.retry.backoffBase);
      out.retry.backoffMultiplier = r->numberOr("backoffMultiplier", out.retry.backoffMultiplier);
    } else {
      error = "'retry' must be false or an object";
      return false;
    }
  }

  if (const JsonValue* ev = json.find("events")) {
    const JsonArray* arr = ev->array();
    if (arr == nullptr) {
      error = "'events' must be an array";
      return false;
    }
    out.events.reserve(arr->size());
    for (std::size_t i = 0; i < arr->size(); ++i) {
      ChaosEvent e;
      if (!parseEvent((*arr)[i], i, e, error)) return false;
      out.events.push_back(std::move(e));
    }
  }

  {
    std::vector<std::string> monitorProblems;
    probe::parseMonitors(json, out.monitors, monitorProblems);
    for (const probe::MonitorSpec& m : out.monitors) {
      if (m.metric == probe::MonitorMetric::P99OpLatencySec) {
        monitorProblems.push_back(
            "monitors: p99OpLatencySec is not supported by chaos scenarios (the drill does "
            "not collect per-op latency; use a workload spec)");
      }
    }
    if (!monitorProblems.empty()) {
      error = monitorProblems.front();
      return false;
    }
  }
  return true;
}

bool loadChaosSpec(const std::string& path, ChaosSpec& out, std::string& error) {
  std::ifstream in(path);
  if (!in) {
    error = path + ": cannot open file";
    return false;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  JsonValue j;
  if (!parseJson(ss.str(), j)) {
    error = path + ": not valid JSON";
    return false;
  }
  if (!parseChaosSpec(j, out, error)) {
    error = path + ": " + error;
    return false;
  }
  return true;
}

namespace {

/// Component kinds any model might expose — probed via faultComponentCount
/// to tell the user what *this* deployment actually supports.
const char* const kKnownKinds[] = {"cnode", "dnode", "dbox",  "nsd",
                                   "oss",   "mds",   "drive", "target"};

std::string supportedKinds(const FileSystemModel& fs) {
  std::string s;
  for (const char* k : kKnownKinds) {
    if (fs.faultComponentCount(k) == 0) continue;
    if (!s.empty()) s += "|";
    s += k;
  }
  if (!s.empty()) s += "|";
  s += "link";
  return s;
}

}  // namespace

std::vector<std::string> validateSchedule(const ChaosSpec& spec, const FileSystemModel& fs,
                                          const Topology& topo) {
  std::vector<std::string> problems;
  const auto add = [&problems](std::string msg) { problems.push_back(std::move(msg)); };

  if (spec.horizon <= 0.0) add("'horizonSec' must be > 0");
  if (spec.interval <= 0.0) add("'intervalSec' must be > 0");
  if (spec.interval > spec.horizon && spec.horizon > 0.0) {
    add("'intervalSec' exceeds 'horizonSec': the timeline would have no samples");
  }
  if (spec.workload.nodes == 0) add("workload: 'nodes' must be >= 1");
  if (spec.workload.procsPerNode == 0) add("workload: 'procsPerNode' must be >= 1");
  if (spec.workload.requestBytes == 0) add("workload: 'requestBytes' must be >= 1");
  if (spec.workload.clientsPerProc == 0) add("workload: 'clientsPerProc' must be >= 1");

  bool anyRestore = false;
  for (const ChaosEvent& ev : spec.events) {
    if (ev.fault.action == FaultAction::Restore) anyRestore = true;
  }
  for (const probe::MonitorSpec& m : spec.monitors) {
    if (m.metric == probe::MonitorMetric::RecoverySec && !anyRestore) {
      add("monitors: recoverySec requires a restore event in the schedule");
    }
  }

  // Per-component health state machine: a component key maps to what the
  // schedule has done to it so far, so overlapping fail/fail on the same
  // target (or restoring something healthy) is rejected up front.
  enum class State { Healthy, Failed, Slow };
  std::map<std::string, State> state;
  Seconds prev = -1.0;

  for (std::size_t i = 0; i < spec.events.size(); ++i) {
    const ChaosEvent& ev = spec.events[i];
    const FaultSpec& f = ev.fault;
    const auto at = [i](const std::string& what) {
      return "events[" + std::to_string(i) + "]: " + what;
    };

    if (ev.at < prev) {
      add(at("'atSec' goes backwards (" + std::to_string(ev.at) + " after " +
             std::to_string(prev) + "); list events in time order"));
    }
    prev = std::max(prev, ev.at);
    if (spec.horizon > 0.0 && ev.at >= spec.horizon) {
      add(at("'atSec' " + std::to_string(ev.at) + " is at/after the horizon (" +
             std::to_string(spec.horizon) + "s); it would never fire"));
    }

    std::string key;
    if (f.component == "link") {
      if (!topo.hasLink(f.link)) {
        add(at("unknown link '" + f.link + "' (not in the deployment's topology)"));
        continue;
      }
      key = "link:" + f.link;
    } else {
      const std::size_t count = fs.faultComponentCount(f.component);
      if (count == 0) {
        add(at("unknown component '" + f.component + "' for this deployment; supported: " +
               supportedKinds(fs)));
        continue;
      }
      if (f.index >= count) {
        add(at("'" + f.component + "' index " + std::to_string(f.index) +
               " out of range (deployment has " + std::to_string(count) + ")"));
        continue;
      }
      key = f.component + ":" + std::to_string(f.index);
    }

    State& st = state.try_emplace(key, State::Healthy).first->second;
    switch (f.action) {
      case FaultAction::Fail:
        if (st == State::Failed) {
          add(at("'" + key + "' is already failed; overlapping fail without a restore"));
        }
        st = State::Failed;
        break;
      case FaultAction::FailSlow:
        if (f.severity <= 0.0 || f.severity >= 1.0) {
          add(at("fail-slow 'severity' must be in (0, 1) exclusive (got " +
                 std::to_string(f.severity) + "); use action 'fail' for a full stop"));
        }
        if (st == State::Failed) {
          add(at("'" + key + "' is failed; restore it before applying fail-slow"));
        }
        st = State::Slow;
        break;
      case FaultAction::Restore:
        if (st == State::Healthy) {
          add(at("'" + key + "' is already healthy; restore without a preceding fault"));
        }
        st = State::Healthy;
        break;
    }
  }
  return problems;
}

}  // namespace hcsim::chaos
