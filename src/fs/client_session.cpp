#include "fs/client_session.hpp"

#include <cmath>
#include <utility>

#include "probe/flight_recorder.hpp"

namespace hcsim {

void ClientSession::submit(Bytes offset, Bytes size, std::uint64_t ops, AccessPattern pattern,
                           bool fsync, std::function<void(const IoResult&)> done) {
  IoRequest req;
  req.client = client_;
  req.fileId = fileId_;
  req.offset = offset;
  req.bytes = size * ops;
  req.pattern = pattern;
  req.fsync = fsync;
  req.ops = ops;
  if (retrySim_ == nullptr) {
    fs_->submit(req, std::move(done));
    return;
  }
  submitAttempt(req, 0, retrySim_->now(), std::make_shared<IoCallback>(std::move(done)));
}

void ClientSession::submitAttempt(const IoRequest& req, std::size_t attempt, SimTime opStart,
                                  std::shared_ptr<IoCallback> done) {
  Simulator& sim = *retrySim_;
  // One settle flag per attempt: whichever of {completion, timeout}
  // fires first wins; the loser sees the flag and backs off. A flow
  // class (req.members > 1) shares one flag, one timer and one counter
  // increment across all its members — retries are never double-billed.
  auto settled = std::make_shared<bool>(false);

  const EventId timer = sim.schedule(policy_.timeout, [this, req, attempt, opStart, done,
                                                       settled] {
    if (*settled) return;
    *settled = true;
    probe::FlightRecorder* rec = retrySim_->recorder();
    if (attempt >= policy_.maxRetries) {
      ++failedOps_;
      if (rec) {
        rec->record(retrySim_->now(), probe::RecordKind::OpFailed,
                    probe::clientSubject(client_.node, client_.proc),
                    static_cast<double>(attempt));
      }
      IoResult r;
      r.startTime = opStart;
      r.endTime = retrySim_->now();
      r.bytes = 0;
      r.failed = true;
      if (*done) (*done)(r);
      return;
    }
    ++retries_;
    if (rec) {
      rec->record(retrySim_->now(), probe::RecordKind::RetryTimeout,
                  probe::clientSubject(client_.node, client_.proc),
                  static_cast<double>(attempt));
    }
    const Seconds wait = policy_.backoffBase * std::pow(policy_.backoffMultiplier,
                                                        static_cast<double>(attempt));
    retrySim_->schedule(wait, [this, req, attempt, opStart, done] {
      // Fresh submission: the model routes it over whatever is alive now.
      submitAttempt(req, attempt + 1, opStart, done);
    });
  });

  fs_->submit(req, [this, timer, opStart, done, settled](const IoResult& r) {
    if (*settled) {
      // The attempt was abandoned at its deadline; its bytes moved, but
      // the op has already been retried (or failed). Swallow.
      ++lateCompletions_;
      if (probe::FlightRecorder* rec = retrySim_->recorder()) {
        rec->record(retrySim_->now(), probe::RecordKind::LateCompletion,
                    probe::clientSubject(client_.node, client_.proc), 0.0);
      }
      return;
    }
    *settled = true;
    retrySim_->cancel(timer);
    IoResult out = r;
    out.startTime = opStart;  // charge the backoff waits to the op
    if (*done) (*done)(out);
  });
}

void ClientSession::submitRequest(const IoRequest& req, std::function<void(const IoResult&)> done) {
  if (retrySim_ == nullptr) {
    fs_->submit(req, std::move(done));
    return;
  }
  submitAttempt(req, 0, retrySim_->now(), std::make_shared<IoCallback>(std::move(done)));
}

void ClientSession::write(Bytes size, bool fsync, std::function<void(const IoResult&)> done) {
  submit(cursor_, size, 1, AccessPattern::SequentialWrite, fsync, std::move(done));
  cursor_ += size;
}

void ClientSession::read(Bytes size, std::function<void(const IoResult&)> done) {
  submit(cursor_, size, 1, AccessPattern::SequentialRead, false, std::move(done));
  cursor_ += size;
}

void ClientSession::readAt(Bytes offset, Bytes size, std::function<void(const IoResult&)> done) {
  submit(offset, size, 1, AccessPattern::RandomRead, false, std::move(done));
}

void ClientSession::writeAt(Bytes offset, Bytes size, bool fsync,
                            std::function<void(const IoResult&)> done) {
  submit(offset, size, 1, AccessPattern::RandomWrite, fsync, std::move(done));
}

void ClientSession::writeRun(Bytes size, std::uint64_t ops, bool fsync,
                             std::function<void(const IoResult&)> done) {
  submit(cursor_, size, ops, AccessPattern::SequentialWrite, fsync, std::move(done));
  cursor_ += size * ops;
}

void ClientSession::readRun(Bytes size, std::uint64_t ops,
                            std::function<void(const IoResult&)> done) {
  submit(cursor_, size, ops, AccessPattern::SequentialRead, false, std::move(done));
  cursor_ += size * ops;
}

void ClientSession::randomReadRun(Bytes size, std::uint64_t ops,
                                  std::function<void(const IoResult&)> done) {
  submit(0, size, ops, AccessPattern::RandomRead, false, std::move(done));
}

}  // namespace hcsim
