file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_clusters.dir/bench_table1_clusters.cpp.o"
  "CMakeFiles/bench_table1_clusters.dir/bench_table1_clusters.cpp.o.d"
  "bench_table1_clusters"
  "bench_table1_clusters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
