file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_resnet.dir/bench_fig5_resnet.cpp.o"
  "CMakeFiles/bench_fig5_resnet.dir/bench_fig5_resnet.cpp.o.d"
  "bench_fig5_resnet"
  "bench_fig5_resnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_resnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
