#!/usr/bin/env bash
# Release-build gate: configure + build EVERYTHING (library, tests,
# benches, examples — a bench that fails to compile fails this script),
# run the full test suite, then smoke-test the sweep engine and the
# regression oracle end to end. A second profile repeats the tests and
# an oracle smoke run under ASan+UBSan with sanitizers fatal; export
# HCSIM_CHECK_SANITIZE=0 to skip it.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${HCSIM_CHECK_BUILD_DIR:-$ROOT/build-check}"
JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -S "$ROOT" -B "$BUILD" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD" -j"$JOBS"

ctest --test-dir "$BUILD" --output-on-failure -j"$JOBS"

# Sweep smoke: the fig2 grid must complete, emit parseable JSONL/CSV,
# and be independent of the job count.
OUT="$BUILD/check-sweep"
"$BUILD/src/hcsim" sweep --spec "$ROOT/examples/specs/fig2.json" --jobs 8 \
    --out "$OUT-8.jsonl" --csv "$OUT-8.csv" >/dev/null
"$BUILD/src/hcsim" sweep --spec "$ROOT/examples/specs/fig2.json" --jobs 1 \
    --out "$OUT-1.jsonl" >/dev/null
cmp "$OUT-8.jsonl" "$OUT-1.jsonl"
test "$(wc -l < "$OUT-8.jsonl")" -ge 24
grep -q '"ok":true' "$OUT-8.jsonl"
head -1 "$OUT-8.csv" | grep -q '^trial,'

# Oracle gates: the metamorphic catalog must hold at full depth, and the
# golden-figure check must pass against the committed snapshots AND be
# byte-identical whatever the job count.
"$BUILD/src/hcsim" oracle relations --cases 50 >/dev/null
"$BUILD/src/hcsim" oracle check --dir "$ROOT/tests/golden" --jobs 8 \
    > "$BUILD/check-oracle-8.txt"
"$BUILD/src/hcsim" oracle check --dir "$ROOT/tests/golden" --jobs 1 \
    > "$BUILD/check-oracle-1.txt"
cmp "$BUILD/check-oracle-8.txt" "$BUILD/check-oracle-1.txt"

# ASan+UBSan profile: rebuild the library + tests with sanitizers fatal
# and re-run the full suite plus an oracle smoke. Benches/examples are
# skipped (nothing new to catch there, halves the build).
if [ "${HCSIM_CHECK_SANITIZE:-1}" != "0" ]; then
  SAN_BUILD="${HCSIM_CHECK_ASAN_BUILD_DIR:-$ROOT/build-check-asan}"
  cmake -S "$ROOT" -B "$SAN_BUILD" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DHCSIM_BUILD_BENCH=OFF -DHCSIM_BUILD_EXAMPLES=OFF \
      -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"
  cmake --build "$SAN_BUILD" -j"$JOBS"
  export UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1
  ctest --test-dir "$SAN_BUILD" --output-on-failure -j"$JOBS"
  "$SAN_BUILD/src/hcsim" oracle relations --cases 5 >/dev/null
  "$SAN_BUILD/src/hcsim" oracle check --dir "$ROOT/tests/golden" >/dev/null
fi

echo "check.sh: OK"
