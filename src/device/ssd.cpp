#include "device/ssd.hpp"

#include <algorithm>
#include <stdexcept>

namespace hcsim {

const char* toString(AccessPattern p) {
  switch (p) {
    case AccessPattern::SequentialRead: return "seq-read";
    case AccessPattern::SequentialWrite: return "seq-write";
    case AccessPattern::RandomRead: return "rand-read";
    case AccessPattern::RandomWrite: return "rand-write";
  }
  return "?";
}

SsdSpec SsdSpec::scm() {
  SsdSpec s;
  s.name = "SCM";
  s.readBandwidth = units::gbs(2.4);
  s.writeBandwidth = units::gbs(2.0);
  s.readLatency = units::usec(10);  // paper: 100ns..30us random access
  s.writeLatency = units::usec(10);
  s.randomEfficiency = 0.97;
  return s;
}

SsdSpec SsdSpec::qlc() {
  SsdSpec s;
  s.name = "QLC";
  s.readBandwidth = units::gbs(3.0);
  // Sustained QLC programming is slow; VAST's design doc leans on SCM
  // buffering + large erasure-coded stripes precisely because of this.
  s.writeBandwidth = units::gbs(0.45);
  s.readLatency = units::usec(90);
  s.writeLatency = units::msec(2);
  s.randomEfficiency = 0.85;
  return s;
}

SsdSpec SsdSpec::samsung970Pro() {
  SsdSpec s;
  s.name = "Samsung970PRO";
  s.readBandwidth = units::gbs(3.5);
  s.writeBandwidth = units::gbs(2.7);
  s.readLatency = units::usec(80);
  s.writeLatency = units::usec(30);
  s.randomEfficiency = 0.9;
  return s;
}

SsdSpec SsdSpec::sasSsd() {
  SsdSpec s;
  s.name = "SAS-SSD";
  s.readBandwidth = units::gbs(1.1);
  s.writeBandwidth = units::gbs(1.0);
  s.readLatency = units::usec(120);
  s.writeLatency = units::usec(60);
  s.randomEfficiency = 0.9;
  return s;
}

SsdArray::SsdArray(SsdSpec spec, std::size_t count) : spec_(std::move(spec)), count_(count) {
  if (count_ == 0) throw std::invalid_argument("SsdArray: count must be > 0");
}

Bandwidth SsdArray::effectiveBandwidth(AccessPattern pattern, Bytes requestSize) const {
  const bool rd = isRead(pattern);
  const Bandwidth stream = rd ? spec_.readBandwidth : spec_.writeBandwidth;
  const Seconds lat = rd ? spec_.readLatency : spec_.writeLatency;
  const double eff = isSequential(pattern) ? 1.0 : spec_.randomEfficiency;
  const double req = std::max<double>(1.0, static_cast<double>(requestSize));
  const Bandwidth perDevice = req / (lat + req / (stream * eff));
  return perDevice * static_cast<double>(count_);
}

Seconds SsdArray::requestLatency(AccessPattern pattern) const {
  return isRead(pattern) ? spec_.readLatency : spec_.writeLatency;
}

}  // namespace hcsim
