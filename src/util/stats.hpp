#pragma once
// Streaming and batch statistics used by the experiment framework.
//
// The paper repeats every measurement 10 times on a shared machine and
// reports the spread; `RunningStats` (Welford) and `Summary` provide the
// same min/mean/max/stdev/percentile reductions.

#include <cstddef>
#include <vector>

namespace hcsim {

/// Numerically stable streaming mean/variance (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Batch summary of a sample vector.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Compute a Summary. The input is copied and sorted internally.
Summary summarize(std::vector<double> samples);

/// Linear-interpolation percentile of a *sorted* vector, q in [0, 100].
double percentileSorted(const std::vector<double>& sorted, double q);

}  // namespace hcsim
