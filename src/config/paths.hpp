#pragma once
// Dotted-path enumeration over serialized configs. The sweep and oracle
// subsystems address individual knobs by the dotted JSON paths the
// config serializers emit ("gateway.linkBandwidth", "ior.segments");
// this module makes that address space inspectable, so generators can
// validate their knob tables against the serializer instead of silently
// drifting when a field is renamed.

#include <string>
#include <vector>

#include "util/json.hpp"

namespace hcsim {

/// One addressable leaf of a serialized config tree.
struct JsonPathInfo {
  enum class Kind { Null, Boolean, Number, String, Array };
  std::string path;  ///< dotted, e.g. "gateway.linkBandwidth"
  Kind kind = Kind::Null;
};

const char* toString(JsonPathInfo::Kind k);

/// Every leaf path of `root` in lexicographic order (JsonObject is a
/// std::map, so the walk is deterministic). Objects recurse; any other
/// value — including arrays — is a leaf.
std::vector<JsonPathInfo> enumerateJsonPaths(const JsonValue& root);

/// True when `path` resolves to a numeric leaf in `root`.
bool hasNumericPath(const JsonValue& root, const std::string& path);

/// The numeric value at `path`, or `fallback` when absent / non-numeric.
double numberAtPath(const JsonValue& root, const std::string& path, double fallback);

}  // namespace hcsim
