#pragma once
// GrammarSource — FBench-style access patterns as a small context-free
// grammar of pattern productions, parsed from the JSON "workload"
// section. A grammar is a map of named rules; each rule is a list of
// productions:
//
//   "ruleName"                                  expand another rule
//   {"rule": "r", "repeat": N}                  expand it N times
//   {"op": "read"|"write", "bytes": B,          an I/O leaf: `count`
//    "count": N, "pattern": "seq"|"strided"|    requests of B bytes in
//    "random", "stride": S, "fsync": true,      the given pattern
//    "shared": true}
//   {"op": "open"|"sync"}                       a metadata leaf
//   {"compute": seconds}                        a pure compute delay
//   {"barrier": true}                           all ranks rendezvous
//
// Expansion starts at the "start" rule (default "main"), is checked for
// cycles (rules must form a DAG) and flattened once at parse time; each
// rank then replays the same template with its own rng/cursor state, so
// patterns — not just sizes — become sweepable axes. Validation returns
// one actionable line per problem, never an exception.

#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/random.hpp"
#include "workload/workload_source.hpp"

namespace hcsim::workload {

/// One flattened leaf of the expanded grammar.
struct GrammarOp {
  OpKind kind = OpKind::Io;
  bool read = false;
  Bytes bytes = 0;
  /// seq: advance the cursor by `bytes`; strided: by `stride`; random:
  /// a fresh uniformly drawn aligned offset inside the file.
  enum class Pattern { Seq, Strided, Random } pattern = Pattern::Seq;
  Bytes stride = 0;
  bool fsync = false;
  bool shared = false;
  MetaOp metaOp = MetaOp::Open;
  Seconds compute = 0.0;
};

struct GrammarSpec {
  std::size_t nodes = 1;
  std::size_t procsPerNode = 1;
  std::uint64_t seed = 0x6ea33a7ull;
  /// Per-rank file extent random offsets are drawn inside.
  Bytes fileBytes = 64 * units::MiB;
  std::vector<GrammarOp> ops;  ///< the expanded template, shared by ranks

  std::size_t totalRanks() const { return nodes * procsPerNode; }
};

/// Parse and expand the "workload" section of a grammar spec. On
/// failure, appends one actionable line per problem to `problems` and
/// returns false. `where` prefixes the messages (e.g. "workload").
bool parseGrammarSpec(const JsonValue& workload, const std::string& where, GrammarSpec& out,
                      std::vector<std::string>& problems);

class GrammarSource : public WorkloadSource {
 public:
  explicit GrammarSource(GrammarSpec spec) : spec_(std::move(spec)) {}

  const std::string& name() const override { return name_; }
  WorkloadPlan load(const WorkloadContext& ctx) override;
  NextStatus next(std::size_t rank, WorkloadOp& out) override;
  void onComplete(std::size_t rank, const WorkloadOp& op, const IoResult& result) override;

 private:
  struct RankState {
    ClientId client{};
    std::size_t next = 0;  ///< index into spec_.ops
    Bytes cursor = 0;
    Rng rng;
    bool pending = false;
  };

  std::string name_ = "grammar";
  GrammarSpec spec_;
  std::vector<RankState> ranks_;
};

}  // namespace hcsim::workload
