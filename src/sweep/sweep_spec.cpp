#include "sweep/sweep_spec.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/random.hpp"

namespace hcsim::sweep {

std::size_t SweepSpec::gridSize() const {
  std::size_t n = 1;
  for (const Axis& a : axes) n *= a.values.size();
  return n;
}

std::size_t SweepSpec::trialCount() const {
  return sampling.mode == Sampling::Mode::Random ? sampling.samples : gridSize();
}

JsonValue toJson(const SweepSpec& spec) {
  JsonObject o;
  o["name"] = spec.name;
  o["experiment"] = spec.experiment;
  o["base"] = deepCopy(spec.base);
  JsonArray axes;
  for (const Axis& a : spec.axes) {
    JsonObject ax;
    ax["path"] = a.path;
    JsonArray vals;
    vals.reserve(a.values.size());
    for (const JsonValue& v : a.values) vals.push_back(deepCopy(v));
    ax["values"] = JsonValue(std::move(vals));
    axes.push_back(JsonValue(std::move(ax)));
  }
  o["axes"] = JsonValue(std::move(axes));
  JsonObject s;
  s["mode"] = std::string(spec.sampling.mode == Sampling::Mode::Grid ? "grid" : "random");
  if (spec.sampling.mode == Sampling::Mode::Random) {
    s["samples"] = static_cast<double>(spec.sampling.samples);
    s["seed"] = static_cast<double>(spec.sampling.seed);
  }
  o["sampling"] = JsonValue(std::move(s));
  return JsonValue(std::move(o));
}

bool fromJson(const JsonValue& j, SweepSpec& out) {
  if (!j.isObject()) return false;
  out.name = j.stringOr("name", out.name);
  out.experiment = j.stringOr("experiment", out.experiment);
  if (const JsonValue* b = j.find("base")) {
    if (!b->isObject()) return false;
    out.base = deepCopy(*b);
  }
  out.axes.clear();
  if (const JsonValue* ax = j.find("axes")) {
    const JsonArray* arr = ax->array();
    if (!arr) return false;
    for (const JsonValue& e : *arr) {
      Axis a;
      a.path = e.stringOr("path", "");
      const JsonValue* vals = e.find("values");
      const JsonArray* varr = vals ? vals->array() : nullptr;
      if (a.path.empty() || !varr || varr->empty()) return false;
      a.values.reserve(varr->size());
      for (const JsonValue& v : *varr) a.values.push_back(deepCopy(v));
      out.axes.push_back(std::move(a));
    }
  }
  if (const JsonValue* s = j.find("sampling")) {
    const std::string mode = s->stringOr("mode", "grid");
    if (mode == "grid") out.sampling.mode = Sampling::Mode::Grid;
    else if (mode == "random") out.sampling.mode = Sampling::Mode::Random;
    else return false;
    out.sampling.samples = static_cast<std::size_t>(s->numberOr("samples", 0.0));
    out.sampling.seed = static_cast<std::uint64_t>(s->numberOr("seed", 1.0));
    if (out.sampling.mode == Sampling::Mode::Random && out.sampling.samples == 0) return false;
  }
  return true;
}

bool loadSpec(const std::string& path, SweepSpec& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream ss;
  ss << in.rdbuf();
  JsonValue j;
  if (!parseJson(ss.str(), j)) return false;
  return fromJson(j, out);
}

JsonValue deepCopy(const JsonValue& v) {
  if (const JsonArray* a = v.array()) {
    JsonArray out;
    out.reserve(a->size());
    for (const JsonValue& e : *a) out.push_back(deepCopy(e));
    return JsonValue(std::move(out));
  }
  if (const JsonObject* o = v.object()) {
    JsonObject out;
    for (const auto& [k, e] : *o) out[k] = deepCopy(e);
    return JsonValue(std::move(out));
  }
  return v;  // scalars hold their value by value
}

namespace {

std::vector<std::string> splitPath(const std::string& path) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : path) {
    if (c == '.') {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  parts.push_back(cur);
  return parts;
}

}  // namespace

const JsonValue* jsonPathGet(const JsonValue& root, const std::string& path) {
  const JsonValue* cur = &root;
  for (const std::string& key : splitPath(path)) {
    if (key.empty()) return nullptr;
    cur = cur->find(key);
    if (!cur) return nullptr;
  }
  return cur;
}

bool jsonPathSet(JsonValue& root, const std::string& path, JsonValue value) {
  if (!root.isObject()) {
    if (!root.isNull()) return false;
    root = JsonValue(JsonObject{});
  }
  JsonValue* cur = &root;
  const std::vector<std::string> parts = splitPath(path);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const std::string& key = parts[i];
    if (key.empty()) return false;
    JsonObject* obj = cur->object();
    if (!obj) return false;
    if (i + 1 == parts.size()) {
      (*obj)[key] = std::move(value);
      return true;
    }
    JsonValue& next = (*obj)[key];
    if (next.isNull()) next = JsonValue(JsonObject{});
    if (!next.isObject()) return false;
    cur = &next;
  }
  return false;
}

namespace {

Trial makeTrial(const SweepSpec& spec, std::size_t index, const std::vector<std::size_t>& pick) {
  Trial t;
  t.index = index;
  t.config = deepCopy(spec.base);
  if (t.config.isNull()) t.config = JsonValue(JsonObject{});
  for (std::size_t a = 0; a < spec.axes.size(); ++a) {
    const Axis& axis = spec.axes[a];
    t.params.emplace_back(axis.path, deepCopy(axis.values[pick[a]]));
    if (!jsonPathSet(t.config, axis.path, deepCopy(axis.values[pick[a]]))) {
      throw std::invalid_argument("sweep: axis path '" + axis.path +
                                  "' collides with a non-object value in the base config");
    }
  }
  return t;
}

}  // namespace

std::vector<Trial> expandTrials(const SweepSpec& spec) {
  std::vector<Trial> trials;
  std::vector<std::size_t> pick(spec.axes.size(), 0);
  if (spec.sampling.mode == Sampling::Mode::Random) {
    Rng rng(spec.sampling.seed);
    trials.reserve(spec.sampling.samples);
    for (std::size_t i = 0; i < spec.sampling.samples; ++i) {
      for (std::size_t a = 0; a < pick.size(); ++a) {
        pick[a] = static_cast<std::size_t>(rng.uniformInt(spec.axes[a].values.size()));
      }
      trials.push_back(makeTrial(spec, i, pick));
    }
    return trials;
  }
  const std::size_t total = spec.gridSize();
  trials.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    trials.push_back(makeTrial(spec, i, pick));
    // Odometer with the last axis fastest.
    for (std::size_t a = pick.size(); a-- > 0;) {
      if (++pick[a] < spec.axes[a].values.size()) break;
      pick[a] = 0;
    }
  }
  return trials;
}

}  // namespace hcsim::sweep
