// Tests for hcsim::daos — the disaggregated object store built on
// hcsim::transport end to end: config validation, placement + RF-2
// write fan-out at the model level, chaos "target" faults, telemetry
// export, and the calibrated end-to-end behaviors that the committed
// example specs (examples/specs/daos_ior.json and
// examples/specs/transport_nconnect.json) sweep: the emergent ~8x
// RDMA-vs-TCP gap and nconnect lane scaling.

#include "daos/daos_model.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>

#include "chaos/chaos_runner.hpp"
#include "cluster/deployments.hpp"
#include "sweep/sweep_runner.hpp"
#include "sweep/sweep_spec.hpp"
#include "telemetry/metrics_registry.hpp"
#include "util/units.hpp"

namespace hcsim {
namespace {

using chaos::ChaosSpec;

JsonValue mustParse(const std::string& text) {
  JsonValue v;
  EXPECT_TRUE(parseJson(text, v)) << text;
  return v;
}

PhaseSpec phase(AccessPattern p, std::uint32_t nodes = 1, std::uint32_t ppn = 1) {
  PhaseSpec ph;
  ph.pattern = p;
  ph.requestSize = units::MiB;
  ph.nodes = nodes;
  ph.procsPerNode = ppn;
  return ph;
}

// ---- config ----

TEST(DaosConfig, ValidateRejectsBadValues) {
  DaosConfig c = daosInstance();
  c.pools = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = daosInstance();
  c.targetBandwidth = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = daosInstance();
  c.redundancyGroupSize = c.totalTargets() + 1;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = daosInstance();
  c.randomEfficiency = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = daosInstance();
  c.fabric.lanes = 0;  // fabric is validated through the config
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(DaosConfig, InstanceIsRf2RdmaOver8Targets) {
  const DaosConfig c = daosInstance();
  EXPECT_EQ(c.totalTargets(), 8u);
  EXPECT_EQ(c.redundancyGroupSize, 2u);
  EXPECT_EQ(c.fabric.kind, transport::FabricKind::Rdma);
  EXPECT_NO_THROW(c.validate());
}

// ---- model: placement, fan-out, faults ----

TEST(DaosModel, WriteFansOutToRedundancyGroup) {
  TestBench bench(Machine::lassen(), 1);
  auto fs = bench.attachDaos(daosInstance());
  fs->beginPhase(phase(AccessPattern::SequentialWrite));
  IoRequest req;
  req.client = {0, 0};
  req.fileId = 1;
  req.bytes = units::MiB;
  req.pattern = AccessPattern::SequentialWrite;
  IoResult result;
  fs->submit(req, [&](const IoResult& r) { result = r; });
  bench.sim().run();
  EXPECT_EQ(fs->replicaWrites(), 2u);        // RF-2: two full bulk transfers
  EXPECT_EQ(result.bytes, units::MiB);       // ...reported once to the client
  EXPECT_GT(result.endTime, result.startTime);
}

TEST(DaosModel, ReadsAreServedByOneReplica) {
  TestBench bench(Machine::lassen(), 1);
  auto fs = bench.attachDaos(daosInstance());
  fs->beginPhase(phase(AccessPattern::SequentialRead));
  IoRequest req;
  req.client = {0, 0};
  req.fileId = 1;
  req.bytes = units::MiB;
  req.pattern = AccessPattern::SequentialRead;
  fs->submit(req, nullptr);
  bench.sim().run();
  EXPECT_EQ(fs->replicaWrites(), 0u);
}

TEST(DaosModel, FsyncAddsEpochCommitLatency) {
  TestBench bench(Machine::lassen(), 1);
  auto fs = bench.attachDaos(daosInstance());
  fs->beginPhase(phase(AccessPattern::SequentialWrite));
  IoRequest req;
  req.client = {0, 0};
  req.fileId = 1;
  req.bytes = units::MiB;
  req.pattern = AccessPattern::SequentialWrite;
  SimTime plain = -1;
  fs->submit(req, [&](const IoResult& r) { plain = r.elapsed(); });
  bench.sim().run();
  req.fsync = true;
  req.fileId = 1;  // same object -> same placement -> comparable path
  SimTime fsynced = -1;
  fs->submit(req, [&](const IoResult& r) { fsynced = r.elapsed(); });
  bench.sim().run();
  EXPECT_GT(fsynced, plain);
}

TEST(DaosModel, FailedTargetsAreSkippedByPlacement) {
  TestBench bench(Machine::lassen(), 1);
  auto fs = bench.attachDaos(daosInstance());
  fs->beginPhase(phase(AccessPattern::SequentialRead));
  // Fail 7 of 8: every object lands on the lone survivor.
  for (std::uint32_t i = 0; i < 7; ++i) {
    EXPECT_TRUE(fs->applyFault({FaultAction::Fail, "target", i}));
  }
  EXPECT_EQ(fs->aliveTargets(), 1u);
  for (std::uint64_t fileId = 1; fileId <= 16; ++fileId) {
    IoRequest req;
    req.client = {0, 0};
    req.fileId = fileId;
    req.bytes = units::KiB;
    fs->submit(req, nullptr);
  }
  bench.sim().run();
  EXPECT_GT(fs->placementSkips(), 0u);

  // All eight down: the pool is unavailable.
  EXPECT_TRUE(fs->applyFault({FaultAction::Fail, "target", 7}));
  EXPECT_EQ(fs->aliveTargets(), 0u);
  IoRequest req;
  req.client = {0, 0};
  req.fileId = 99;
  req.bytes = units::KiB;
  EXPECT_THROW(fs->submit(req, nullptr), std::runtime_error);
}

TEST(DaosModel, RestoreHealsPlacementAndFaultHooksValidate) {
  TestBench bench(Machine::lassen(), 1);
  auto fs = bench.attachDaos(daosInstance());
  EXPECT_EQ(fs->faultComponentCount("target"), 8u);
  EXPECT_EQ(fs->faultComponentCount("cnode"), 0u);
  EXPECT_FALSE(fs->applyFault({FaultAction::Fail, "nsd", 0}));
  EXPECT_THROW(fs->applyFault({FaultAction::Fail, "target", 8}), std::out_of_range);

  EXPECT_TRUE(fs->applyFault({FaultAction::Fail, "target", 0}));
  EXPECT_EQ(fs->aliveTargets(), 7u);
  EXPECT_TRUE(fs->applyFault({FaultAction::Restore, "target", 0}));
  EXPECT_EQ(fs->aliveTargets(), 8u);
  EXPECT_FALSE(fs->rebuildRoute({FaultAction::Restore, "target", 0}).empty());
}

TEST(DaosModel, ExportsDaosMetrics) {
  TestBench bench(Machine::lassen(), 1);
  auto fs = bench.attachDaos(daosInstance());
  fs->beginPhase(phase(AccessPattern::SequentialWrite));
  IoRequest req;
  req.client = {0, 0};
  req.fileId = 1;
  req.bytes = units::MiB;
  req.pattern = AccessPattern::SequentialWrite;
  fs->submit(req, nullptr);
  bench.sim().run();
  telemetry::MetricsRegistry reg;
  fs->exportMetrics(reg);
  EXPECT_EQ(reg.gaugeOr("daos.targets", -1.0), 8.0);
  EXPECT_EQ(reg.gaugeOr("daos.targets_alive", -1.0), 8.0);
  EXPECT_EQ(reg.counterOr("daos.writes", -1.0), 1.0);
  EXPECT_EQ(reg.counterOr("daos.replica_writes", -1.0), 2.0);
  EXPECT_GT(reg.counterOr("daos.xstream.ops_completed", -1.0), 0.0);
}

// ---- end to end: the calibrated example specs ----

/// The base trial of examples/specs/daos_ior.json (which sweeps
/// transport.kind over it) and of the transport relations.
JsonValue daosIorConfig(const std::string& transportSection) {
  std::string text = R"({
    "site": "lassen", "storage": "daos",
    "ior": {"access": "seq-read", "nodes": 2, "procsPerNode": 4,
            "segments": 200, "repetitions": 1}})";
  if (!transportSection.empty()) {
    text.insert(text.rfind('}'), ", \"transport\": " + transportSection);
  }
  return mustParse(text);
}

TEST(DaosEndToEnd, IorRunsWithTransportTelemetry) {
  const sweep::TrialMetrics m = sweep::runTrial("ior", daosIorConfig(""));
  ASSERT_TRUE(m.ok) << m.error;
  EXPECT_GT(m.meanGBs, 0.0);
  // DAOS always rides the fabric, section or not.
  EXPECT_TRUE(m.hasTransport);
  EXPECT_GT(m.transportOps, 0.0);
  EXPECT_GT(m.transportBytes, 0.0);
}

TEST(DaosEndToEnd, EmptyTransportSectionIsTheIdentity) {
  const sweep::TrialMetrics none = sweep::runTrial("ior", daosIorConfig(""));
  const sweep::TrialMetrics empty = sweep::runTrial("ior", daosIorConfig("{}"));
  ASSERT_TRUE(none.ok && empty.ok);
  EXPECT_EQ(none.meanGBs, empty.meanGBs);
  EXPECT_EQ(none.elapsedSec, empty.elapsedSec);
  EXPECT_EQ(none.bytesMoved, empty.bytesMoved);
}

TEST(DaosEndToEnd, RdmaVsTcpCalibratedRatio) {
  // The daos_ior.json calibration point: one ~1.15 GB/s TCP stream per
  // node vs 4 usable ~2.5 GB/s QPs. The ~8x gap (measured 8.8x) emerges
  // from the preset cost structures; nothing configures the ratio.
  const sweep::TrialMetrics tcp = sweep::runTrial("ior", daosIorConfig(R"({"kind": "tcp"})"));
  const sweep::TrialMetrics rdma = sweep::runTrial("ior", daosIorConfig(R"({"kind": "rdma"})"));
  ASSERT_TRUE(tcp.ok && rdma.ok);
  EXPECT_NEAR(tcp.meanGBs, 2.25, 0.2);
  EXPECT_NEAR(rdma.meanGBs, 19.9, 1.5);
  const double ratio = rdma.meanGBs / tcp.meanGBs;
  EXPECT_GE(ratio, 6.4);
  EXPECT_LE(ratio, 9.6);
}

TEST(DaosEndToEnd, NconnectLanesScaleTcpThroughput) {
  // The transport_nconnect.json calibration curve: with 8 procs/node
  // feeding the endpoint, every doubling of TCP lanes must keep paying
  // off (>= 1.8x per step until another resource binds).
  double prev = 0.0;
  for (int lanes : {1, 2, 4, 8}) {
    JsonValue cfg = daosIorConfig(R"({"kind": "tcp", "lanes": )" + std::to_string(lanes) + "}");
    sweep::jsonPathSet(cfg, "ior.procsPerNode", JsonValue(8.0));
    const sweep::TrialMetrics m = sweep::runTrial("ior", cfg);
    ASSERT_TRUE(m.ok) << m.error;
    if (prev > 0.0) EXPECT_GE(m.meanGBs, prev * 1.8) << lanes << " lanes";
    prev = m.meanGBs;
  }
  EXPECT_NEAR(prev, 16.9, 1.5);  // 8 lanes x ~1.15 GB/s x 2 nodes, minus overheads
}

// ---- end to end: chaos target drill ----

TEST(DaosChaos, TargetFailThenRestoreDipsAndRecovers) {
  ChaosSpec spec;
  std::string err;
  ASSERT_TRUE(chaos::parseChaosSpec(mustParse(R"({
    "name": "daos-target-drill",
    "site": "lassen", "storage": "daos",
    "workload": {"nodes": 4, "procsPerNode": 8, "access": "seq-write",
                 "requestBytes": 8388608},
    "horizonSec": 20, "intervalSec": 2,
    "retry": {"timeoutSec": 5},
    "events": [
      {"atSec": 2, "action": "fail", "component": "target", "index": 0},
      {"atSec": 10, "action": "restore", "component": "target", "index": 0}
    ]})"), spec, err))
      << err;
  const chaos::ChaosOutcome out = chaos::runChaos(spec);
  ASSERT_GT(out.healthyGBs, 0.0);
  double minGBs = out.timeline.front().gbs;
  double maxGBs = minGBs;
  for (const auto& slice : out.timeline) {
    minGBs = std::min(minGBs, slice.gbs);
    maxGBs = std::max(maxGBs, slice.gbs);
  }
  EXPECT_LT(minGBs, out.healthyGBs * 0.9);   // the outage bites
  EXPECT_GT(maxGBs, out.healthyGBs * 0.97);  // and the restore converges
  EXPECT_NEAR(out.finalGBs, out.healthyGBs, out.healthyGBs * 0.05);
}

}  // namespace
}  // namespace hcsim
