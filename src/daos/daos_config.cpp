#include "daos/daos_config.hpp"

#include <stdexcept>

namespace hcsim {

void DaosConfig::validate() const {
  if (pools == 0) throw std::invalid_argument("DaosConfig: pools must be > 0");
  if (targetsPerPool == 0) {
    throw std::invalid_argument("DaosConfig: targetsPerPool must be > 0");
  }
  if (xstreamsPerTarget == 0) {
    throw std::invalid_argument("DaosConfig: xstreamsPerTarget must be > 0");
  }
  if (targetBandwidth <= 0.0) {
    throw std::invalid_argument("DaosConfig: targetBandwidth must be > 0");
  }
  if (targetServiceTime < 0.0 || fsyncLatency < 0.0 || metadataServiceTime < 0.0 ||
      sharedFileLockLatency < 0.0) {
    throw std::invalid_argument("DaosConfig: latencies must be >= 0");
  }
  if (randomEfficiency <= 0.0 || randomEfficiency > 1.0) {
    throw std::invalid_argument("DaosConfig: randomEfficiency must be in (0,1]");
  }
  if (redundancyGroupSize == 0 || redundancyGroupSize > totalTargets()) {
    throw std::invalid_argument(
        "DaosConfig: redundancyGroupSize must be in [1, totalTargets()]");
  }
  if (sharedFileEfficiency <= 0.0 || sharedFileEfficiency > 1.0) {
    throw std::invalid_argument("DaosConfig: sharedFileEfficiency must be in (0,1]");
  }
  fabric.validate();
}

DaosConfig DaosConfig::instance() { return DaosConfig{}; }

}  // namespace hcsim
