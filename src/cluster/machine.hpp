#pragma once
// Machine — the compute clusters of Table I.

#include <cstddef>
#include <string>

#include "util/units.hpp"

namespace hcsim {

struct Machine {
  std::string name;
  std::size_t nodes = 0;         ///< cluster size
  unsigned coresPerNode = 0;     ///< "CPU" column (cores)
  unsigned gpusPerNode = 0;
  unsigned ramGiB = 0;
  std::string arch;
  std::string network;
  /// Per-node injection bandwidth into the cluster fabric.
  Bandwidth nodeInjection = 0.0;
  Seconds nicLatency = units::usec(2);

  /// Processes per node the paper uses for full-node runs.
  unsigned fullNodeProcs() const { return coresPerNode; }

  // ---- Table I presets ----
  static Machine lassen();  ///< 795 nodes, 44 cores, 4 GPUs, Power9, IB EDR
  static Machine ruby();    ///< 1512 nodes, 56 cores, Xeon, Omni-Path
  static Machine quartz();  ///< 3018 nodes, 36 cores, Xeon, Omni-Path
  static Machine wombat();  ///< 8 nodes, 48 cores, A64fx, IB EDR
};

}  // namespace hcsim
