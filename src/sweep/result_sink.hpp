#pragma once
// Result emission for sweep outcomes: JSONL (one trial per line — the
// stable interchange format that baseline comparison consumes back),
// CSV (one axis per column, for plotting), and baseline-delta
// computation against a prior JSONL results file.

#include <map>
#include <string>
#include <vector>

#include "sweep/sweep_runner.hpp"

namespace hcsim::sweep {

/// Canonical identity of a trial across runs: its axis assignments as a
/// compact JSON object. Keys are sorted (JsonObject is a std::map), so
/// the key survives axis reordering between spec revisions.
std::string paramsKey(const Trial& trial);

/// One JSONL record: {"trial":i,"params":{...},"metrics":{...}}.
std::string toJsonlLine(const TrialResult& r);
bool writeJsonl(const SweepOutcome& out, const std::string& path);

/// CSV with one column per axis path plus the metric columns.
std::string toCsv(const SweepOutcome& out);
bool writeCsv(const SweepOutcome& out, const std::string& path);

/// Read mean GB/s per paramsKey from a prior JSONL results file
/// (failed trials are skipped). Returns false on unreadable input.
bool loadBaseline(const std::string& path, std::map<std::string, double>& out);

struct BaselineDelta {
  std::size_t index = 0;
  std::string key;
  double baselineGBs = 0.0;
  double currentGBs = 0.0;
  double deltaPct = 0.0;  ///< 100 * (current - baseline) / baseline
  bool matched = false;   ///< false when the baseline lacks this trial
};

/// Delta per successful trial, in trial order.
std::vector<BaselineDelta> compareToBaseline(const SweepOutcome& out,
                                             const std::map<std::string, double>& baseline);

}  // namespace hcsim::sweep
