// Extension bench: the §III-B application suite across deployments — the
// "better mapping between specific workloads and file systems" the paper
// says such studies should enable, as one table.

#include <cstdio>

#include "util/table.hpp"
#include "workloads/app_workloads.hpp"

using namespace hcsim;

int main() {
  std::printf("== Application suite (4 nodes): aggregate GB/s per deployment ==\n\n");

  const struct {
    Site site;
    StorageKind kind;
    std::size_t ppn;
  } targets[] = {
      {Site::Lassen, StorageKind::Vast, 16},
      {Site::Lassen, StorageKind::Gpfs, 16},
      {Site::Wombat, StorageKind::Vast, 16},
      {Site::Wombat, StorageKind::NvmeLocal, 16},
  };

  ResultTable t("workload x deployment (aggregate GB/s; DL rows: system throughput)");
  std::vector<std::string> header{"workload", "domain"};
  for (const auto& tgt : targets) {
    header.push_back(std::string(toString(tgt.kind)) + "@" + toString(tgt.site));
  }
  t.setHeader(header);

  for (const AppWorkload& proto : workloads::suite(4, 16)) {
    std::vector<Cell> row{proto.name, proto.domain};
    for (const auto& tgt : targets) {
      AppWorkload w = proto;
      // DLIO workloads carry their own rank layout; IOR phases adapt ppn.
      for (auto& p : w.phases) {
        p.ior.procsPerNode = tgt.ppn;
        p.ior.segments = std::min<std::size_t>(p.ior.segments, 512);
      }
      const AppWorkloadResult r = runAppWorkload(tgt.site, tgt.kind, w);
      row.emplace_back(w.isDlio ? r.sysThroughputGBs : r.aggregateGBs());
    }
    t.addRow(std::move(row));
  }
  std::printf("%s\n", t.toString().c_str());
  std::printf("Columns tell the paper's story: GPFS dominates bandwidth-hungry\n"
              "analytics on Lassen; RDMA VAST on Wombat competes; TCP VAST on Lassen\n"
              "only suits low-I/O workloads like ResNet-50.\n");
  return 0;
}
