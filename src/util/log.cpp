#include "util/log.hpp"

#include <atomic>
#include <cstdarg>

namespace hcsim::log {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};

const char* name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void setLevel(LogLevel lvl) { g_level.store(lvl, std::memory_order_relaxed); }

LogLevel level() { return g_level.load(std::memory_order_relaxed); }

void write(LogLevel lvl, const char* fmt, ...) {
  if (lvl < level()) return;
  std::fprintf(stderr, "[hcsim %s] ", name(lvl));
  va_list ap;
  va_start(ap, fmt);
  std::vfprintf(stderr, fmt, ap);
  va_end(ap);
  std::fputc('\n', stderr);
}

}  // namespace hcsim::log
