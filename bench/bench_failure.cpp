// Extension bench: availability under component failure — the behaviour
// VAST's HA architecture (§III-A: stateless CNodes, dual-DNode DBoxes)
// promises but the paper could not test on production hardware.

#include <cstdio>

#include "cluster/deployments.hpp"
#include "ior/ior_runner.hpp"
#include "util/table.hpp"

using namespace hcsim;

namespace {

double bandwidthWith(std::size_t failedCnodes, std::size_t degradedBoxes,
                     std::size_t failedBoxes, AccessPattern access) {
  TestBench bench(Machine::wombat(), 4);
  auto fs = bench.attachVast(vastOnWombat());
  for (std::size_t i = 0; i < failedCnodes; ++i) fs->failCNode(i);
  for (std::size_t b = 0; b < degradedBoxes; ++b) fs->failDNode(b);
  for (std::size_t b = 0; b < failedBoxes; ++b) fs->failDBox(b);
  IorRunner runner(bench, *fs);
  IorConfig cfg = IorConfig::scalability(access, 4, 48);
  cfg.segments = 512;
  return units::toGBs(runner.run(cfg).bandwidth.mean);
}

}  // namespace

int main() {
  std::printf("== Failure injection: VAST on Wombat, 4 nodes x 48 procs ==\n\n");

  {
    ResultTable t("CNode failures (stateless failover)");
    t.setHeader({"failed CNodes", "write GB/s", "seq read GB/s"});
    for (std::size_t f : {0u, 1u, 2u, 4u, 6u}) {
      t.addRow({static_cast<double>(f), bandwidthWith(f, 0, 0, AccessPattern::SequentialWrite),
                bandwidthWith(f, 0, 0, AccessPattern::SequentialRead)});
    }
    std::printf("%s\n", t.toString().c_str());
  }

  {
    ResultTable t("DNode / DBox failures (HA enclosures)");
    t.setHeader({"scenario", "write GB/s", "seq read GB/s"});
    t.addRow({std::string("healthy"), bandwidthWith(0, 0, 0, AccessPattern::SequentialWrite),
              bandwidthWith(0, 0, 0, AccessPattern::SequentialRead)});
    t.addRow({std::string("1 DNode down (HA pair degraded)"),
              bandwidthWith(0, 1, 0, AccessPattern::SequentialWrite),
              bandwidthWith(0, 1, 0, AccessPattern::SequentialRead)});
    t.addRow({std::string("all pairs degraded"),
              bandwidthWith(0, 4, 0, AccessPattern::SequentialWrite),
              bandwidthWith(0, 4, 0, AccessPattern::SequentialRead)});
    t.addRow({std::string("1 DBox down"),
              bandwidthWith(0, 0, 1, AccessPattern::SequentialWrite),
              bandwidthWith(0, 0, 1, AccessPattern::SequentialRead)});
    t.addRow({std::string("2 DBoxes down"),
              bandwidthWith(0, 0, 2, AccessPattern::SequentialWrite),
              bandwidthWith(0, 0, 2, AccessPattern::SequentialRead)});
    std::printf("%s\n", t.toString().c_str());
  }

  std::printf("Shape: writes degrade linearly with CNodes (similarity/compression is\n"
              "CNode CPU); reads ride the DNode caches until fabric paths halve.\n");
  return 0;
}
