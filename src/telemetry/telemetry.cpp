#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <sstream>

#include "trace/chrome_trace.hpp"
#include "util/json.hpp"

namespace hcsim::telemetry {

std::uint32_t Telemetry::stageId(const std::string& name) {
  const auto it = stageIds_.find(name);
  if (it != stageIds_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(stageNames_.size());
  stageNames_.push_back(name);
  stageIds_.emplace(name, id);
  return id;
}

std::uint32_t Telemetry::stageForLink(std::uint32_t linkIdx, const std::string& linkName) {
  if (linkIdx >= linkStageCache_.size()) linkStageCache_.resize(linkIdx + 1, kNoSpan);
  std::uint32_t& cached = linkStageCache_[linkIdx];
  if (cached == kNoSpan) cached = stageId(stageFamily(linkName));
  return cached;
}

std::uint32_t Telemetry::beginSpan(std::string name, std::uint32_t pid, std::uint32_t tid,
                                   Seconds start, double bytes) {
  Span s;
  s.name = std::move(name);
  s.pid = pid;
  s.tid = tid;
  s.start = start;
  s.bytes = bytes;
  spans_.push_back(std::move(s));
  return static_cast<std::uint32_t>(spans_.size() - 1);
}

void Telemetry::accrue(std::uint32_t span, std::uint32_t stage, Seconds dt, double bytes) {
  if (span >= spans_.size() || dt <= 0.0) return;
  auto& stages = spans_[span].stages;
  for (SpanStage& s : stages) {
    if (s.stage == stage) {
      s.seconds += dt;
      s.bytes += bytes;
      return;
    }
  }
  stages.push_back(SpanStage{stage, dt, bytes});
}

void Telemetry::endSpan(std::uint32_t span, Seconds end) {
  if (span >= spans_.size()) return;
  spans_[span].end = end;
}

AttributionReport Telemetry::attribution() const {
  AttributionReport rep;
  // Aggregate by stage id, then name the rows; ids are interned in
  // first-seen order, totals are re-sorted below, so the report is
  // deterministic for a deterministic simulation.
  std::vector<StageTotal> byId(stageNames_.size());
  for (const Span& sp : spans_) {
    for (const SpanStage& st : sp.stages) {
      StageTotal& t = byId.at(st.stage);
      t.seconds += st.seconds;
      t.bytes += st.bytes;
    }
  }
  rep.spans = spans_.size();
  for (std::size_t i = 0; i < byId.size(); ++i) {
    if (byId[i].seconds <= 0.0 && byId[i].bytes <= 0.0) continue;
    byId[i].stage = stageNames_[i];
    rep.totalSeconds += byId[i].seconds;
    rep.stages.push_back(std::move(byId[i]));
  }
  std::stable_sort(rep.stages.begin(), rep.stages.end(),
                   [](const StageTotal& a, const StageTotal& b) {
                     if (a.seconds != b.seconds) return a.seconds > b.seconds;
                     return a.stage < b.stage;
                   });
  for (StageTotal& t : rep.stages) {
    t.sharePct = rep.totalSeconds > 0.0 ? 100.0 * t.seconds / rep.totalSeconds : 0.0;
  }
  if (!rep.stages.empty()) {
    rep.dominantStage = rep.stages.front().stage;
    rep.dominantSharePct = rep.stages.front().sharePct;
  }
  return rep;
}

void Telemetry::exportTo(MetricsRegistry& reg) const {
  reg.counter("telemetry.spans", static_cast<double>(spans_.size()));
  reg.counter("telemetry.stages", static_cast<double>(stageNames_.size()));
  if (spans_.empty()) return;
  // Log-scale histograms need positive bounds; spans can legitimately
  // have ~0 latency (cache hits) or 0 bytes, which land in underflow.
  Histogram& lat = reg.histogram("telemetry.span.latency_s", 1e-6, 1e4, 50);
  Histogram& size = reg.histogram("telemetry.span.bytes", 1.0, 1e15, 50);
  double openSpans = 0.0;
  for (const Span& sp : spans_) {
    if (!sp.closed()) {
      openSpans += 1.0;
      continue;
    }
    lat.add(sp.duration());
    size.add(sp.bytes);
  }
  reg.gauge("telemetry.spans.open", openSpans);
}

void Telemetry::clear() {
  spans_.clear();
  stageNames_.clear();
  stageIds_.clear();
  linkStageCache_.clear();
}

std::string mergedChromeTraceJson(const TraceLog& app, const Telemetry& tel) {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& e : app.events()) {
    if (!first) os << ',';
    first = false;
    os << chromeTraceEventJson(e);
  }
  for (const Span& sp : tel.spans()) {
    if (!sp.closed()) continue;
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << jsonEscape(sp.name) << "\",\"cat\":\"internal\",\"ph\":\"X\",\"ts\":"
       << jsonNumber(sp.start * 1e6) << ",\"dur\":" << jsonNumber(sp.duration() * 1e6)
       << ",\"pid\":" << (kInternalPidBase + sp.pid) << ",\"tid\":" << sp.tid
       << ",\"args\":{\"bytes\":" << jsonNumber(sp.bytes);
    for (const SpanStage& st : sp.stages) {
      os << ",\"" << jsonEscape("stage." + tel.stageName(st.stage)) << "\":"
         << jsonNumber(st.seconds);
    }
    os << "}}";
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
  return os.str();
}

}  // namespace hcsim::telemetry
