#include "core/calibration.hpp"

#include <cstdio>
#include <sstream>

namespace hcsim::calibration {

double Check::ratio() const { return paperValue != 0.0 ? measured / paperValue : 0.0; }

bool Check::pass() const {
  if (paperValue == 0.0) return false;
  const double r = ratio();
  return r >= 1.0 / tolerance && r <= tolerance;
}

std::string toMarkdown(const std::vector<Check>& checks) {
  std::ostringstream os;
  os << "| Quantity | Paper | Measured (sim) | Ratio | Band | Verdict |\n";
  os << "|---|---|---|---|---|---|\n";
  for (const auto& c : checks) {
    char buf[256];
    std::snprintf(buf, sizeof buf, "| %s | %.2f | %.2f | %.2fx | within %.1fx | %s |\n",
                  c.name.c_str(), c.paperValue, c.measured, c.ratio(), c.tolerance,
                  c.pass() ? "PASS" : "MISS");
    os << buf;
  }
  return os.str();
}

}  // namespace hcsim::calibration
