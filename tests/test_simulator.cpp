#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hcsim {
namespace {

TEST(Simulator, StartsAtTimeZeroEmpty) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0.0);
  EXPECT_TRUE(sim.empty());
  EXPECT_EQ(sim.pendingEvents(), 0u);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, DispatchesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(3.0, [&] { order.push_back(3); });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 3.0);
}

TEST(Simulator, EqualTimestampsAreFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, NowAdvancesToEventTime) {
  Simulator sim;
  SimTime seen = -1;
  sim.schedule(5.5, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 5.5);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator sim;
  sim.schedule(2.0, [&] {
    sim.schedule(-10.0, [&] { EXPECT_DOUBLE_EQ(sim.now(), 2.0); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(Simulator, ScheduleAtPastClampsToNow) {
  Simulator sim;
  bool ran = false;
  sim.schedule(3.0, [&] {
    sim.scheduleAt(1.0, [&] {
      ran = true;
      EXPECT_DOUBLE_EQ(sim.now(), 3.0);
    });
  });
  sim.run();
  EXPECT_TRUE(ran);
}

TEST(Simulator, CancelPreventsDispatch) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule(1.0, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelTwiceIsFalse) {
  Simulator sim;
  const EventId id = sim.schedule(1.0, [] {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, CancelFiredEventIsFalse) {
  Simulator sim;
  const EventId id = sim.schedule(1.0, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, CancelInvalidIdIsFalse) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(EventId{}));
  EXPECT_FALSE(sim.cancel(EventId{999}));
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) sim.schedule(1.0, chain);
  };
  sim.schedule(1.0, chain);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator sim;
  std::vector<int> seen;
  sim.schedule(1.0, [&] { seen.push_back(1); });
  sim.schedule(2.0, [&] { seen.push_back(2); });
  sim.schedule(3.0, [&] { seen.push_back(3); });
  sim.runUntil(2.5);
  EXPECT_EQ(seen, (std::vector<int>{1, 2}));
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
  sim.run();
  EXPECT_EQ(seen, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, RunUntilAdvancesTimeEvenWhenIdle) {
  Simulator sim;
  sim.runUntil(10.0);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(Simulator, RunUntilDispatchesEventExactlyAtHorizon) {
  Simulator sim;
  bool ran = false;
  sim.schedule(2.0, [&] { ran = true; });
  sim.runUntil(2.0);
  EXPECT_TRUE(ran);
}

TEST(Simulator, CountsDispatchedAndPending) {
  Simulator sim;
  sim.schedule(1.0, [] {});
  sim.schedule(2.0, [] {});
  const EventId id = sim.schedule(3.0, [] {});
  sim.cancel(id);
  EXPECT_EQ(sim.pendingEvents(), 2u);
  sim.run();
  EXPECT_EQ(sim.eventsDispatched(), 2u);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, StepDispatchesExactlyOne) {
  Simulator sim;
  int count = 0;
  sim.schedule(1.0, [&] { ++count; });
  sim.schedule(2.0, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, CancelInsideEventAffectsPendingEvent) {
  Simulator sim;
  bool secondRan = false;
  EventId second{};
  second = sim.schedule(2.0, [&] { secondRan = true; });
  sim.schedule(1.0, [&] { EXPECT_TRUE(sim.cancel(second)); });
  sim.run();
  EXPECT_FALSE(secondRan);
}

TEST(Simulator, ManyEventsStressOrdering) {
  Simulator sim;
  SimTime last = -1.0;
  for (int i = 0; i < 5000; ++i) {
    sim.schedule((i * 7919) % 1000 * 0.001, [&, i] {
      EXPECT_GE(sim.now(), last);
      last = sim.now();
    });
  }
  sim.run();
  EXPECT_EQ(sim.eventsDispatched(), 5000u);
}

}  // namespace
}  // namespace hcsim
