# Empty dependencies file for test_gpfs.
# This may be replaced when dependencies are built.
