// dl_training — emulate the paper's two DLIO workloads (ResNet-50 and
// Cosmoflow) on VAST and GPFS, print the §VI-A runtime split, and export
// a chrome trace of the ResNet run for inspection in Perfetto.

#include <cstdio>

#include "core/experiment.hpp"
#include "trace/chrome_trace.hpp"
#include "util/table.hpp"

using namespace hcsim;

namespace {

void report(const char* label, const DlioResult& r) {
  const double pctCompute =
      r.runtime > 0 ? 100.0 * (1.0 - r.breakdown.nonOverlappingIo /
                                         (r.breakdown.nonOverlappingIo +
                                          r.breakdown.totalCompute / 1.0 + 1e-12))
                    : 0.0;
  (void)pctCompute;
  std::printf("  %-18s runtime %7.2f s | I/O: %7.3f s exposed + %8.3f s hidden | "
              "app %7.3f GB/s | sys %7.3f GB/s\n",
              label, r.runtime, r.breakdown.nonOverlappingIo, r.breakdown.overlappingIo,
              units::toGBs(r.throughput.application), units::toGBs(r.throughput.system));
}

}  // namespace

int main() {
  std::printf("== DLIO emulation on Lassen: ResNet-50 and Cosmoflow, 8 nodes ==\n\n");

  for (const DlioWorkload& w : {DlioWorkload::resnet50(), DlioWorkload::cosmoflow()}) {
    std::printf("%s (%s scaling, %zu epochs, %zu I/O threads/rank):\n", w.name.c_str(),
                toString(w.scaling), w.epochs, w.ioThreads);
    DlioConfig cfg;
    cfg.workload = w;
    cfg.nodes = 8;
    cfg.procsPerNode = 4;
    const DlioResult vast = runDlio(Site::Lassen, StorageKind::Vast, cfg);
    const DlioResult gpfs = runDlio(Site::Lassen, StorageKind::Gpfs, cfg);
    report("VAST:", vast);
    report("GPFS:", gpfs);
    if (w.name == "resnet50") {
      const char* path = "resnet50_vast_trace.json";
      if (writeChromeTrace(vast.trace, path)) {
        std::printf("  wrote %s (%zu events) — open in chrome://tracing or Perfetto\n", path,
                    vast.trace.size());
      }
    }
    std::printf("\n");
  }

  std::printf("Takeaway reproduced: ResNet-50's small dataset keeps VAST's extra I/O\n"
              "hidden behind compute (viable on VAST); Cosmoflow's 4 I/O threads and\n"
              "larger dataset expose it (GPFS serves it better).\n");
  return 0;
}
