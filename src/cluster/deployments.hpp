#pragma once
// Deployments — wiring of storage systems onto machines exactly as the
// paper describes (§IV-B), plus TestBench, the one-stop environment that
// owns the simulator/network and builds models against a machine.

#include <memory>
#include <vector>

#include "cluster/machine.hpp"
#include "daos/daos_model.hpp"
#include "gpfs/gpfs_model.hpp"
#include "lustre/lustre_model.hpp"
#include "net/topology.hpp"
#include "nvme/nvme_local.hpp"
#include "probe/flight_recorder.hpp"
#include "probe/self_profiler.hpp"
#include "sim/simulator.hpp"
#include "vast/vast_model.hpp"

namespace hcsim {

// ---- Storage configurations per site (paper §IV-B) ----

/// VAST reached from Lassen: LC instance, NFS/TCP through ONE gateway
/// node with 2x100 Gb Ethernet over a single TCP link.
VastConfig vastOnLassen();

/// VAST reached from Ruby: 1x40 Gb Ethernet on eight gateway nodes.
VastConfig vastOnRuby();

/// VAST reached from Quartz: 2x1 Gb Ethernet on 32 gateway nodes.
VastConfig vastOnQuartz();

/// VAST on Wombat: RDMA/RoCE, nconnect=16, multipathing, no gateway.
VastConfig vastOnWombat();

/// GPFS on Lassen (Fig 1b).
GpfsConfig gpfsOnLassen();

/// The LC Lustre instance (serves Quartz and Ruby).
LustreConfig lustreOnQuartz();
LustreConfig lustreOnRuby();

/// Wombat's node-local NVMe.
NvmeLocalConfig nvmeOnWombat();

/// The DAOS evaluation instance (not site-bound: DAOS is not one of the
/// paper's deployments; the pool is reachable from any machine over its
/// own libfabric-class network).
DaosConfig daosInstance();

// ---- TestBench ----

/// Owns one simulated experiment environment: simulator, flow network,
/// topology, and the per-compute-node NIC links of a machine. Storage
/// models are then attached to it.
class TestBench {
 public:
  /// Wire `nodesUsed` compute nodes of `machine` (clamped to the machine
  /// size).
  TestBench(Machine machine, std::size_t nodesUsed);

  TestBench(const TestBench&) = delete;
  TestBench& operator=(const TestBench&) = delete;

  Simulator& sim() { return sim_; }
  Topology& topo() { return topo_; }
  const Machine& machine() const { return machine_; }
  std::size_t nodesUsed() const { return clientNics_.size(); }
  const std::vector<LinkId>& clientNics() const { return clientNics_; }

  /// The bench-owned telemetry sink, already attached to the flow
  /// network. Disabled by default; enable before running the workload.
  telemetry::Telemetry& telemetry() { return telemetry_; }
  const telemetry::Telemetry& telemetry() const { return telemetry_; }

  /// The bench-owned flight recorder (hcsim::probe), attached to the
  /// simulator at construction — always on, per the probe overhead
  /// budget in docs/PROBE.md. Dump it on an anomaly or --dump-on-exit.
  probe::FlightRecorder& recorder() { return recorder_; }
  const probe::FlightRecorder& recorder() const { return recorder_; }

  /// The bench-owned self-profiler, attached but disabled by default
  /// (`hcsim stats --self`, sweep --self-profile enable it).
  probe::SelfProfiler& profiler() { return profiler_; }
  const probe::SelfProfiler& profiler() const { return profiler_; }

  /// Snapshot the whole stack into `reg`: engine counters ("engine.*"),
  /// network state ("net.*"), span metrics ("telemetry.*"), and — when
  /// `fs` is given — the model's own "<model>.*" metrics.
  void collectMetrics(telemetry::MetricsRegistry& reg,
                      const FileSystemModel* fs = nullptr) const;

  // Attach storage models (each call creates an independent instance).
  std::unique_ptr<VastModel> attachVast(VastConfig cfg);
  std::unique_ptr<GpfsModel> attachGpfs(GpfsConfig cfg);
  std::unique_ptr<LustreModel> attachLustre(LustreConfig cfg);
  std::unique_ptr<NvmeLocalModel> attachNvme(NvmeLocalConfig cfg);
  std::unique_ptr<DaosModel> attachDaos(DaosConfig cfg);

 private:
  Machine machine_;
  probe::FlightRecorder recorder_;
  probe::SelfProfiler profiler_;
  Simulator sim_;
  FlowNetwork net_;
  Topology topo_;
  telemetry::Telemetry telemetry_;
  std::vector<LinkId> clientNics_;
};

}  // namespace hcsim
