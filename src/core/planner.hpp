#pragma once
// Deployment planner — the constructive use of the paper's methodology:
// given a bandwidth goal, search the VAST configuration space (CNode
// count x frontend x nconnect) by actually simulating each candidate,
// and return the cheapest deployment that meets it.

#include <vector>

#include "cluster/machine.hpp"
#include "device/ssd.hpp"
#include "vast/vast_config.hpp"

namespace hcsim {

struct PlanGoal {
  AccessPattern pattern = AccessPattern::SequentialRead;
  double minGBsPerNode = 1.0;
  std::size_t nodes = 8;
  std::size_t procsPerNode = 16;
  /// IOR volume per process used for the probe runs (smaller = faster).
  Bytes probeBytesPerProc = 512 * units::MiB;
};

struct PlanCandidate {
  VastConfig config;
  double measuredGBsPerNode = 0.0;
  bool meetsGoal = false;
  /// Crude cost proxy: CNodes + DBoxes weigh the hardware bill.
  double costUnits() const {
    return static_cast<double>(config.cnodes) + 2.0 * static_cast<double>(config.dboxes);
  }
};

struct PlanSpace {
  std::vector<std::size_t> cnodeChoices{4, 8, 16, 32};
  std::vector<NfsTransport> transports{NfsTransport::Tcp, NfsTransport::Rdma};
  std::vector<std::size_t> nconnectChoices{1, 8, 16};
  /// Base hardware template; cnodes/transport/nconnect are overwritten.
  VastConfig base = VastConfig::wombatInstance();
  /// Gateway used for TCP candidates.
  GatewaySpec tcpGateway;
};

/// Simulate every candidate in the space on `machine`; candidates are
/// returned sorted by (meetsGoal desc, costUnits asc, bandwidth desc).
std::vector<PlanCandidate> planVastDeployment(const Machine& machine, const PlanGoal& goal,
                                              PlanSpace space = {});

/// First element of planVastDeployment's ordering, i.e. the cheapest
/// candidate meeting the goal (or, if none does, the fastest one).
PlanCandidate bestVastDeployment(const Machine& machine, const PlanGoal& goal,
                                 PlanSpace space = {});

}  // namespace hcsim
