#pragma once
// SLO watchdog monitors — declarative "is this run healthy?" checks
// evaluated online against the timeline samplers that chaos/workload
// runs already schedule.
//
// A spec's `"monitors"` array declares objectives over four metrics
// (docs/PROBE.md has the full grammar):
//
//   {"metric": "goodputGBs",      "min": 4.0, "windowSec": 15}
//   {"metric": "p99OpLatencySec", "max": 0.5}
//   {"metric": "recoverySec",     "max": 20}
//   {"metric": "stallSec",        "max": 10}
//
// Evaluation piggybacks on existing sample callbacks — the WatchdogSet
// never schedules events, so a run with every monitor satisfied is
// byte-identical (timeline, JSONL, metrics) to the same run with no
// monitors at all. Breaches become first-class events: a MonitorBreach
// flight-recorder record, `probe.*` gauges, a rendered breach table and
// a nonzero `hcsim` exit.

#include <string>
#include <vector>

#include "util/json.hpp"

namespace hcsim::telemetry {
class MetricsRegistry;
}

namespace hcsim::probe {

class FlightRecorder;

enum class MonitorMetric {
  GoodputGBs,       ///< trailing-window mean goodput must stay >= min
  P99OpLatencySec,  ///< p99 of collected op latencies must stay <= max
  RecoverySec,      ///< goodput must recover within max s of the last restore
  StallSec,         ///< no zero-goodput stretch longer than max s
};

const char* toString(MonitorMetric metric);

struct MonitorSpec {
  std::string name;  ///< label for the breach table (defaults to the metric)
  MonitorMetric metric = MonitorMetric::GoodputGBs;
  double min = 0.0;        ///< GoodputGBs floor
  double max = 0.0;        ///< latency/recovery/stall ceiling
  double windowSec = 0.0;  ///< GoodputGBs trailing window (0 = each slice on its own)
};

struct Breach {
  std::string monitor;
  MonitorMetric metric = MonitorMetric::GoodputGBs;
  double observed = 0.0;
  double limit = 0.0;
  double atSec = 0.0;  ///< simulated time the watchdog fired
  std::uint64_t occurrences = 1;  ///< total violations of this monitor (first is reported)
};

/// Parse a spec's "monitors" member (absent = no monitors). Appends
/// human-readable problems for unknown metrics, missing/invalid bounds
/// or non-positive windows; on any problem `out` is left unchanged.
void parseMonitors(const JsonValue& root, std::vector<MonitorSpec>& out,
                   std::vector<std::string>& problems);

/// Online evaluator for one run. Feed it every timeline slice (and op
/// latency when collected), then finish(); it accumulates at most one
/// reported breach per monitor plus an occurrence count.
class WatchdogSet {
 public:
  explicit WatchdogSet(std::vector<MonitorSpec> specs = {});

  bool active() const { return !states_.empty(); }
  std::size_t monitorCount() const { return states_.size(); }

  /// Breach records also land in `recorder` when set (observe-only).
  void setRecorder(FlightRecorder* recorder) { recorder_ = recorder; }

  /// Chaos context for RecoverySec: the recovery clock starts at the
  /// last restore and a slice counts as recovered when its goodput is
  /// back above the degraded floor (healthy * (1 - tolerance)).
  void setRecoveryContext(double lastRestoreAt, double healthyGBs, double degradedTolerance);

  /// One timeline slice [start, end) that averaged `gbs`.
  void observeSlice(double start, double end, double gbs);

  /// One completed-op latency at simulated time `t`.
  void observeOpLatency(double t, double latencySec);

  /// Close the run at simulated time `endSec`: evaluates latency p99,
  /// an unmet recovery deadline and a still-open stall.
  void finish(double endSec);

  const std::vector<Breach>& breaches() const { return breaches_; }
  bool breached() const { return !breaches_.empty(); }

  /// probe.monitors / probe.breaches gauges plus one
  /// probe.monitor.<name>.breaches gauge per monitor.
  void exportTo(telemetry::MetricsRegistry& reg) const;

  /// Human table: one row per monitor, OK or BREACH with observed vs
  /// limit and the firing time. Empty string when no monitors.
  std::string renderTable() const;

 private:
  struct SliceWindow {
    double start = 0.0, end = 0.0, gbs = 0.0;
  };
  struct State {
    MonitorSpec spec;
    bool fired = false;
    std::uint64_t occurrences = 0;
    std::vector<SliceWindow> window;  ///< trailing slices (GoodputGBs)
    std::size_t nextLatencyEval = 1;  ///< P99: sample count gating the next online eval
    double stallStart = -1.0;         ///< StallSec: start of the open zero stretch
    bool stallFiredStretch = false;   ///< StallSec: current stretch already reported
  };

  void fire(std::size_t idx, double observed, double limit, double atSec);

  std::vector<State> states_;
  std::vector<Breach> breaches_;
  FlightRecorder* recorder_ = nullptr;
  std::vector<double> latencies_;
  bool haveRecovery_ = false;
  double lastRestoreAt_ = 0.0;
  double degradedFloor_ = 0.0;
  double recoveredAt_ = -1.0;
  double lastSliceEnd_ = 0.0;
};

/// Render `breaches` as the actionable table the CLI prints before
/// exiting nonzero. Empty string when there are none.
std::string renderBreachTable(const std::vector<Breach>& breaches);

}  // namespace hcsim::probe
